// Shared harness for the figure/table reproduction benches.
//
// Every bench binary:
//  - accepts --scale=<f> (or env SUBSEL_SCALE) to shrink/grow the workload;
//    defaults are chosen so the whole bench/ directory completes in minutes
//    on a multicore server, while --scale=1 (and scale=10 for the ImageNet
//    proxy) reaches the paper's cardinalities;
//  - prints paper-style rows/heatmaps to stdout;
//  - mirrors the raw numbers to bench_results/<name>.csv.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/csv.h"
#include "common/log.h"
#include "common/timer.h"
#include "core/distributed_greedy.h"
#include "core/greedy.h"
#include "core/normalization.h"
#include "data/datasets.h"

namespace subsel::bench {

/// Parses --scale / --flag=value style arguments and SUBSEL_SCALE.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) values_.emplace_back(argv[i]);
  }

  double get_double(const std::string& name, double fallback) const {
    const std::string prefix = "--" + name + "=";
    for (const auto& arg : values_) {
      if (arg.rfind(prefix, 0) == 0) return std::atof(arg.c_str() + prefix.size());
    }
    if (name == "scale") {
      if (const char* env = std::getenv("SUBSEL_SCALE")) return std::atof(env);
    }
    return fallback;
  }

  std::size_t get_size(const std::string& name, std::size_t fallback) const {
    return static_cast<std::size_t>(
        get_double(name, static_cast<double>(fallback)));
  }

  std::string get_string(const std::string& name,
                         const std::string& fallback) const {
    const std::string prefix = "--" + name + "=";
    for (const auto& arg : values_) {
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
    }
    return fallback;
  }

  bool has_flag(const std::string& name) const {
    const std::string flag = "--" + name;
    for (const auto& arg : values_) {
      if (arg == flag) return true;
    }
    return false;
  }

 private:
  std::vector<std::string> values_;
};

inline std::string results_dir() {
  const char* env = std::getenv("SUBSEL_RESULTS_DIR");
  const std::string dir = env != nullptr ? env : "bench_results";
  ensure_directory(dir);
  return dir;
}

/// The paper's partition/round axes: {1, 2, 4, 8, 16, 32}.
inline std::vector<std::size_t> paper_axis() { return {1, 2, 4, 8, 16, 32}; }

struct HeatmapSpec {
  const data::Dataset* dataset = nullptr;
  double alpha = 0.9;
  double subset_fraction = 0.1;
  bool adaptive = false;
  double delta_gamma = 0.75;
  std::vector<std::size_t> partitions = paper_axis();
  std::vector<std::size_t> rounds = paper_axis();
  std::uint64_t seed = 17;
};

struct HeatmapResult {
  /// scores[p][r]: raw objective for partitions[p] x rounds[r].
  std::vector<std::vector<double>> objectives;
  std::vector<std::vector<double>> normalized;
  double centralized_objective = 0.0;
};

/// Runs the partitions x rounds grid of Algorithm 6 for one parameter group
/// and normalizes as in Section 6 (centralized = 100, min observed = 0).
inline HeatmapResult run_heatmap(const HeatmapSpec& spec) {
  const auto params = core::ObjectiveParams::from_alpha(spec.alpha);
  const auto& dataset = *spec.dataset;
  const std::size_t k = static_cast<std::size_t>(
      spec.subset_fraction * static_cast<double>(dataset.size()));
  const auto ground_set = dataset.ground_set();

  HeatmapResult result;
  result.centralized_objective =
      core::centralized_greedy(dataset.graph, dataset.utilities, params, k).objective;

  std::vector<double> observed;
  result.objectives.resize(spec.partitions.size());
  for (std::size_t p = 0; p < spec.partitions.size(); ++p) {
    result.objectives[p].resize(spec.rounds.size());
    for (std::size_t r = 0; r < spec.rounds.size(); ++r) {
      core::DistributedGreedyConfig config;
      config.objective = params;
      config.num_machines = spec.partitions[p];
      config.num_rounds = spec.rounds[r];
      config.adaptive_partitioning = spec.adaptive;
      config.delta = core::linear_delta(spec.delta_gamma);
      config.seed = spec.seed + 1000 * p + r;
      const auto run = core::distributed_greedy(ground_set, k, config);
      result.objectives[p][r] = run.objective;
      observed.push_back(run.objective);
    }
  }

  core::ScoreNormalizer normalizer(result.centralized_objective, observed);
  result.normalized.resize(spec.partitions.size());
  for (std::size_t p = 0; p < spec.partitions.size(); ++p) {
    result.normalized[p].resize(spec.rounds.size());
    for (std::size_t r = 0; r < spec.rounds.size(); ++r) {
      result.normalized[p][r] = normalizer.normalize(result.objectives[p][r]);
    }
  }
  return result;
}

/// Prints a heatmap in the paper's orientation: rows = partitions (top = 1),
/// columns = rounds (left = 1).
inline void print_heatmap(const char* title, const HeatmapSpec& spec,
                          const std::vector<std::vector<double>>& values) {
  std::printf("\n%s\n", title);
  std::printf("%10s", "part\\rnd");
  for (std::size_t rounds : spec.rounds) std::printf("%7zu", rounds);
  std::printf("\n");
  for (std::size_t p = 0; p < spec.partitions.size(); ++p) {
    std::printf("%10zu", spec.partitions[p]);
    for (std::size_t r = 0; r < spec.rounds.size(); ++r) {
      std::printf("%7.0f", values[p][r]);
    }
    std::printf("\n");
  }
}

/// Writes a heatmap group to CSV (one row per cell).
inline void heatmap_to_csv(CsvWriter& csv, const std::string& dataset,
                           const HeatmapSpec& spec, const HeatmapResult& result) {
  for (std::size_t p = 0; p < spec.partitions.size(); ++p) {
    for (std::size_t r = 0; r < spec.rounds.size(); ++r) {
      csv.row(dataset, spec.alpha, spec.subset_fraction, spec.adaptive ? 1 : 0,
              spec.delta_gamma, spec.partitions[p], spec.rounds[r],
              result.objectives[p][r], result.normalized[p][r],
              result.centralized_objective);
    }
  }
}

inline const std::initializer_list<std::string_view> kHeatmapCsvHeader = {
    "dataset", "alpha",  "subset_fraction", "adaptive",   "gamma",
    "partitions", "rounds", "objective",       "normalized", "centralized"};

/// Prints a signed difference heatmap (Appendix E orientation), decimal
/// places truncated as in the paper's plots.
inline void print_diff_heatmap(const char* title, const HeatmapSpec& spec,
                               const std::vector<std::vector<double>>& variant,
                               const std::vector<std::vector<double>>& baseline) {
  std::printf("\n%s\n", title);
  std::printf("%10s", "part\\rnd");
  for (std::size_t rounds : spec.rounds) std::printf("%7zu", rounds);
  std::printf("\n");
  for (std::size_t p = 0; p < spec.partitions.size(); ++p) {
    std::printf("%10zu", spec.partitions[p]);
    for (std::size_t r = 0; r < spec.rounds.size(); ++r) {
      std::printf("%7.0f", std::trunc(variant[p][r] - baseline[p][r]));
    }
    std::printf("\n");
  }
}

/// Appendix E: Δ-factor ablation. Runs the partitions x rounds grid for
/// γ ∈ {0.75 (baseline), 1, 0.5, 0.25}, subsets {10, 50} %, α ∈ {.9,.5,.1},
/// non-adaptive (adaptive is biased toward small γ, Sec. Appendix E), and
/// prints the difference-to-baseline heatmaps of Figures 6-11.
inline void run_delta_ablation(const data::Dataset& dataset, CsvWriter& csv) {
  for (const double fraction : {0.1, 0.5}) {
    for (const double alpha : {0.9, 0.5, 0.1}) {
      HeatmapSpec base_spec;
      base_spec.dataset = &dataset;
      base_spec.alpha = alpha;
      base_spec.subset_fraction = fraction;
      base_spec.adaptive = false;
      base_spec.delta_gamma = 0.75;
      const auto baseline = run_heatmap(base_spec);
      heatmap_to_csv(csv, dataset.name, base_spec, baseline);

      for (const double gamma : {1.0, 0.5, 0.25}) {
        HeatmapSpec spec = base_spec;
        spec.delta_gamma = gamma;
        const auto variant = run_heatmap(spec);
        heatmap_to_csv(csv, dataset.name, spec, variant);
        char title[160];
        std::snprintf(title, sizeof(title),
                      "%.0f%% subset, alpha=%.1f: normalized score of gamma=%.2f"
                      " minus gamma=0.75",
                      fraction * 100, alpha, gamma);
        print_diff_heatmap(title, spec, variant.normalized, baseline.normalized);
      }
    }
  }
}

}  // namespace subsel::bench
