// Deadline-degraded baselines: an expired wall-clock budget makes every
// solver RETURN what it has — a valid (merely smaller) selection flagged
// `degraded` — instead of failing, and what it returns is always a prefix
// of (or identical to) the unhurried run's answer where the algorithm's
// order is deterministic.
#include <gtest/gtest.h>

#include <vector>

#include "../testing/test_instances.h"
#include "baselines/baselines.h"
#include "baselines/streaming.h"
#include "common/run_control.h"
#include "core/objective_kernel.h"

namespace subsel::baselines {
namespace {

using subsel::testing::Instance;
using subsel::testing::random_instance;

bool is_prefix(const std::vector<core::NodeId>& prefix,
               const std::vector<core::NodeId>& full) {
  if (prefix.size() > full.size()) return false;
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    if (prefix[i] != full[i]) return false;
  }
  return true;
}

TEST(DeadlineDegradation, LazyGreedyExpiredDeadlineReturnsDegradedPrefix) {
  const Instance instance = random_instance(200, 5, 1401);
  const auto ground_set = instance.ground_set();
  const core::PairwiseKernel kernel(ground_set,
                                    ObjectiveParams::from_alpha(0.9));
  const auto result = lazy_greedy(kernel, 20, Deadline::after_ms(0));
  EXPECT_TRUE(result.degraded);
  EXPECT_TRUE(result.selected.empty());  // expired before the first commit
}

TEST(DeadlineDegradation, LazyGreedyTightDeadlineResultIsAPrefixOfTheFullRun) {
  // Whether or not the 1 ms budget expires mid-run on this machine, the
  // returned selection must be a prefix of the unhurried answer: each lazy
  // greedy prefix is the exact answer for its own size.
  const Instance instance = random_instance(1500, 6, 1402);
  const auto ground_set = instance.ground_set();
  const core::PairwiseKernel kernel(ground_set,
                                    ObjectiveParams::from_alpha(0.9));
  const auto full = lazy_greedy(kernel, 150);
  ASSERT_FALSE(full.degraded);
  const auto hurried = lazy_greedy(kernel, 150, Deadline::after_ms(1));
  EXPECT_TRUE(is_prefix(hurried.selected, full.selected));
  if (!hurried.degraded) EXPECT_EQ(hurried.selected, full.selected);
}

TEST(DeadlineDegradation, StochasticGreedyExpiredDeadline) {
  const Instance instance = random_instance(200, 5, 1403);
  const auto ground_set = instance.ground_set();
  const core::PairwiseKernel kernel(ground_set,
                                    ObjectiveParams::from_alpha(0.9));
  const auto result =
      stochastic_greedy(kernel, 20, 0.1, 31, Deadline::after_ms(0));
  EXPECT_TRUE(result.degraded);
  EXPECT_TRUE(result.selected.empty());
}

TEST(DeadlineDegradation, ThresholdGreedyExpiredDeadline) {
  const Instance instance = random_instance(200, 5, 1404);
  const auto ground_set = instance.ground_set();
  const core::PairwiseKernel kernel(ground_set,
                                    ObjectiveParams::from_alpha(0.9));
  const auto result = threshold_greedy(kernel, 20, 0.1, Deadline::after_ms(0));
  EXPECT_TRUE(result.degraded);
  EXPECT_LE(result.selected.size(), 20u);
}

TEST(DeadlineDegradation, SieveStreamingExpiredDeadline) {
  const Instance instance = random_instance(300, 5, 1405);
  const auto ground_set = instance.ground_set();
  SieveStreamingConfig config;
  config.objective = ObjectiveParams::from_alpha(0.9);
  config.deadline = Deadline::after_ms(0);
  const auto result = sieve_streaming(ground_set, 30, config);
  EXPECT_TRUE(result.degraded);
  EXPECT_LE(result.selected.size(), 30u);
}

TEST(DeadlineDegradation, SampleAndPruneExpiredDeadline) {
  const Instance instance = random_instance(300, 5, 1406);
  const auto ground_set = instance.ground_set();
  SamplePruneConfig config;
  config.objective = ObjectiveParams::from_alpha(0.9);
  config.deadline = Deadline::after_ms(0);
  const auto result = sample_and_prune(ground_set, 30, config);
  EXPECT_TRUE(result.degraded);
  EXPECT_LE(result.selected.size(), 30u);
}

TEST(DeadlineDegradation, UnlimitedDeadlineNeverDegrades) {
  const Instance instance = random_instance(150, 4, 1407);
  const auto ground_set = instance.ground_set();
  const core::PairwiseKernel kernel(ground_set,
                                    ObjectiveParams::from_alpha(0.9));
  EXPECT_FALSE(Deadline::unlimited().is_limited());
  EXPECT_FALSE(Deadline::unlimited().expired());

  const auto lazy = lazy_greedy(kernel, 15, Deadline::unlimited());
  EXPECT_FALSE(lazy.degraded);
  EXPECT_EQ(lazy.selected.size(), 15u);
  const auto stochastic =
      stochastic_greedy(kernel, 15, 0.1, 31, Deadline::unlimited());
  EXPECT_FALSE(stochastic.degraded);
  EXPECT_EQ(stochastic.selected.size(), 15u);
  const auto threshold = threshold_greedy(kernel, 15, 0.1, Deadline::unlimited());
  EXPECT_FALSE(threshold.degraded);
  EXPECT_EQ(threshold.selected.size(), 15u);
}

TEST(DeadlineDegradation, DeadlinedOverloadMatchesPlainOverloadWhenUnlimited) {
  // The deadline parameter must be behavior-neutral when unlimited: the
  // kernel overloads with and without a Deadline produce identical output.
  const Instance instance = random_instance(250, 5, 1408);
  const auto ground_set = instance.ground_set();
  const core::PairwiseKernel kernel(ground_set,
                                    ObjectiveParams::from_alpha(0.9));
  const auto plain = lazy_greedy(ground_set, ObjectiveParams::from_alpha(0.9), 25);
  const auto with_deadline = lazy_greedy(kernel, 25, Deadline::unlimited());
  EXPECT_EQ(plain.selected, with_deadline.selected);
  EXPECT_EQ(plain.objective, with_deadline.objective);
}

}  // namespace
}  // namespace subsel::baselines
