// Threshold greedy, SieveStreaming, and SAMPLE&PRUNE — validity, quality
// against the centralized greedy reference, memory-footprint accounting, and
// the parameter behaviors their analyses predict.
#include "baselines/streaming.h"

#include <gtest/gtest.h>

#include <set>

#include "../testing/test_instances.h"
#include "baselines/baselines.h"

namespace subsel::baselines {
namespace {

using subsel::testing::Instance;
using subsel::testing::brute_force_optimum;
using subsel::testing::random_instance;

void expect_valid_subset(const std::vector<NodeId>& selected, std::size_t k,
                         std::size_t n) {
  EXPECT_EQ(selected.size(), k);
  std::set<NodeId> unique(selected.begin(), selected.end());
  EXPECT_EQ(unique.size(), selected.size());
  for (NodeId v : selected) EXPECT_LT(static_cast<std::size_t>(v), n);
}

// --- threshold greedy ------------------------------------------------------

TEST(ThresholdGreedy, ProducesValidSubset) {
  const Instance instance = random_instance(200, 5, 801);
  const auto ground_set = instance.ground_set();
  const auto result =
      threshold_greedy(ground_set, ObjectiveParams::from_alpha(0.9), 30);
  expect_valid_subset(result.selected, 30, 200);
  core::PairwiseObjective objective(ground_set, ObjectiveParams::from_alpha(0.9));
  EXPECT_NEAR(result.objective, objective.evaluate(result.selected), 1e-9);
}

TEST(ThresholdGreedy, NearGreedyQuality) {
  // (1 − 1/e − ε) vs (1 − 1/e): expect within a few percent of greedy.
  const Instance instance = random_instance(400, 6, 802);
  const auto ground_set = instance.ground_set();
  const auto params = ObjectiveParams::from_alpha(0.9);
  const double greedy =
      core::centralized_greedy(instance.graph, instance.utilities, params, 40)
          .objective;
  const auto result = threshold_greedy(ground_set, params, 40, 0.05);
  EXPECT_GT(result.objective, 0.95 * greedy);
}

TEST(ThresholdGreedy, SmallerEpsilonIsAtLeastAsGoodOnAverage) {
  double fine = 0.0, coarse = 0.0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Instance instance = random_instance(150, 4, 810 + seed);
    const auto ground_set = instance.ground_set();
    const auto params = ObjectiveParams::from_alpha(0.9);
    fine += threshold_greedy(ground_set, params, 20, 0.02).objective;
    coarse += threshold_greedy(ground_set, params, 20, 0.5).objective;
  }
  EXPECT_GE(fine, coarse);
}

TEST(ThresholdGreedy, ZeroBudgetAndOversizedBudget) {
  const Instance instance = random_instance(30, 3, 803);
  const auto ground_set = instance.ground_set();
  const auto params = ObjectiveParams::from_alpha(0.9);
  EXPECT_TRUE(threshold_greedy(ground_set, params, 0).selected.empty());
  const auto all = threshold_greedy(ground_set, params, 100);
  EXPECT_EQ(all.selected.size(), 30u);
}

TEST(ThresholdGreedy, NearOptimalOnTinyInstance) {
  const Instance instance = random_instance(12, 3, 804);
  const auto ground_set = instance.ground_set();
  const auto params = ObjectiveParams::from_alpha(0.9);
  const double optimum = brute_force_optimum(ground_set, params, 4);
  const auto result = threshold_greedy(ground_set, params, 4, 0.05);
  EXPECT_GE(result.objective, (1.0 - 1.0 / 2.718281828 - 0.05) * optimum);
}

// --- SieveStreaming ---------------------------------------------------------

TEST(SieveStreaming, ProducesValidSubset) {
  const Instance instance = random_instance(300, 5, 805);
  const auto ground_set = instance.ground_set();
  SieveStreamingConfig config;
  config.objective = ObjectiveParams::from_alpha(0.9);
  const auto result = sieve_streaming(ground_set, 30, config);
  EXPECT_LE(result.selected.size(), 30u);
  EXPECT_GT(result.selected.size(), 0u);
  std::set<NodeId> unique(result.selected.begin(), result.selected.end());
  EXPECT_EQ(unique.size(), result.selected.size());
  EXPECT_GT(result.num_sieves, 1u);
}

TEST(SieveStreaming, MeetsHalfMinusEpsilonOfGreedy) {
  // Guarantee is (1/2 − ε) of OPT; against greedy (≥ (1−1/e)·OPT) the bound
  // (1/2 − ε)/(1 − 1/e) ≈ 0.71 of greedy with ε = 0.05. Use monotone setup.
  const Instance instance = random_instance(400, 5, 806);
  const auto ground_set = instance.ground_set();
  const auto params = ObjectiveParams::from_alpha(0.9);
  const double greedy =
      core::centralized_greedy(instance.graph, instance.utilities, params, 40)
          .objective;
  SieveStreamingConfig config;
  config.objective = params;
  config.epsilon = 0.05;
  const auto result = sieve_streaming(ground_set, 40, config);
  EXPECT_GT(result.objective, 0.5 * greedy);
}

TEST(SieveStreaming, MemoryScalesWithBudgetNotGroundSet) {
  // Doubling n should not double resident memory; it is O(k log(k)/ε).
  SieveStreamingConfig config;
  config.objective = ObjectiveParams::from_alpha(0.9);
  const Instance small = random_instance(300, 5, 807);
  const Instance large = random_instance(1200, 5, 808);
  const auto small_result = sieve_streaming(small.ground_set(), 20, config);
  const auto large_result = sieve_streaming(large.ground_set(), 20, config);
  EXPECT_LT(large_result.peak_resident_elements,
            4 * small_result.peak_resident_elements + 64);
}

TEST(SieveStreaming, MonotonicityOffsetKeepsLowAlphaUsable) {
  // With α = 0.3 the raw objective can be non-monotone; the Appendix-A
  // offset restores the sieve's assumptions. The run must still return a
  // non-empty subset whose reported objective is the unshifted f(S).
  const Instance instance = random_instance(200, 6, 809);
  const auto ground_set = instance.ground_set();
  SieveStreamingConfig config;
  config.objective = ObjectiveParams::from_alpha(0.3);
  config.apply_monotonicity_offset = true;
  const auto result = sieve_streaming(ground_set, 25, config);
  EXPECT_GT(result.selected.size(), 0u);
  core::PairwiseObjective objective(ground_set, config.objective);
  EXPECT_NEAR(result.objective, objective.evaluate(result.selected), 1e-9);
}

TEST(SieveStreaming, DeterministicGivenSeed) {
  const Instance instance = random_instance(150, 4, 811);
  const auto ground_set = instance.ground_set();
  SieveStreamingConfig config;
  config.objective = ObjectiveParams::from_alpha(0.9);
  config.seed = 5;
  const auto a = sieve_streaming(ground_set, 15, config);
  const auto b = sieve_streaming(ground_set, 15, config);
  EXPECT_EQ(a.selected, b.selected);
  EXPECT_EQ(a.objective, b.objective);
}

// --- SAMPLE&PRUNE -----------------------------------------------------------

TEST(SamplePrune, ProducesValidSubset) {
  const Instance instance = random_instance(300, 5, 812);
  const auto ground_set = instance.ground_set();
  SamplePruneConfig config;
  config.objective = ObjectiveParams::from_alpha(0.9);
  const auto result = sample_and_prune(ground_set, 30, config);
  expect_valid_subset(result.selected, 30, 300);
  EXPECT_GE(result.rounds, 1u);
  core::PairwiseObjective objective(ground_set, config.objective);
  EXPECT_NEAR(result.objective, objective.evaluate(result.selected), 1e-9);
}

TEST(SamplePrune, NearGreedyQuality) {
  const Instance instance = random_instance(500, 5, 813);
  const auto ground_set = instance.ground_set();
  const auto params = ObjectiveParams::from_alpha(0.9);
  const double greedy =
      core::centralized_greedy(instance.graph, instance.utilities, params, 50)
          .objective;
  SamplePruneConfig config;
  config.objective = params;
  const auto result = sample_and_prune(ground_set, 50, config);
  EXPECT_GT(result.objective, 0.85 * greedy);
}

TEST(SamplePrune, RespectsMachineCapacity) {
  const Instance instance = random_instance(400, 5, 814);
  const auto ground_set = instance.ground_set();
  SamplePruneConfig config;
  config.objective = ObjectiveParams::from_alpha(0.9);
  config.machine_capacity = 60;
  const auto result = sample_and_prune(ground_set, 40, config);
  EXPECT_LE(result.peak_resident_elements, 60u + 40u);
  EXPECT_EQ(result.selected.size(), 40u);
}

TEST(SamplePrune, SurvivorCountsShrink) {
  const Instance instance = random_instance(400, 5, 815);
  const auto ground_set = instance.ground_set();
  SamplePruneConfig config;
  config.objective = ObjectiveParams::from_alpha(0.9);
  config.machine_capacity = 50;
  const auto result = sample_and_prune(ground_set, 40, config);
  ASSERT_FALSE(result.survivors_per_round.empty());
  for (std::size_t i = 1; i < result.survivors_per_round.size(); ++i) {
    EXPECT_LE(result.survivors_per_round[i], result.survivors_per_round[i - 1]);
  }
}

TEST(SamplePrune, CapacityCoveringGroundSetMatchesGreedyQuality) {
  // With the whole ground set on one "machine" the first round degenerates
  // to the centralized greedy.
  const Instance instance = random_instance(120, 4, 816);
  const auto ground_set = instance.ground_set();
  const auto params = ObjectiveParams::from_alpha(0.9);
  SamplePruneConfig config;
  config.objective = params;
  config.machine_capacity = 120;
  const auto result = sample_and_prune(ground_set, 15, config);
  const double greedy = core::naive_greedy(ground_set, params, 15).objective;
  EXPECT_NEAR(result.objective, greedy, 1e-9);
}

// Parameterized sweep: every method returns a valid, reasonable-quality
// subset across budgets and alphas.
class StreamingBaselineSweep
    : public ::testing::TestWithParam<std::tuple<double, std::size_t>> {};

TEST_P(StreamingBaselineSweep, AllMethodsBeatRandomQuality) {
  const auto [alpha, k] = GetParam();
  const Instance instance = random_instance(250, 5, 820);
  const auto ground_set = instance.ground_set();
  const auto params = ObjectiveParams::from_alpha(alpha);
  core::PairwiseObjective objective(ground_set, params);

  double random_total = 0.0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    random_total += random_selection(ground_set, params, k, seed).objective;
  }
  const double random_avg = random_total / 5.0;

  EXPECT_GT(threshold_greedy(ground_set, params, k).objective, random_avg);

  SieveStreamingConfig sieve_config;
  sieve_config.objective = params;
  sieve_config.apply_monotonicity_offset = alpha < 0.5;
  EXPECT_GT(sieve_streaming(ground_set, k, sieve_config).objective, random_avg);

  SamplePruneConfig sp_config;
  sp_config.objective = params;
  EXPECT_GT(sample_and_prune(ground_set, k, sp_config).objective, random_avg);
}

INSTANTIATE_TEST_SUITE_P(AlphasAndBudgets, StreamingBaselineSweep,
                         ::testing::Combine(::testing::Values(0.9, 0.5),
                                            ::testing::Values(10, 40, 80)));

}  // namespace
}  // namespace subsel::baselines
