#include "baselines/baselines.h"

#include <gtest/gtest.h>

#include <set>

#include "../testing/test_instances.h"
#include "data/datasets.h"

namespace subsel::baselines {
namespace {

using subsel::testing::Instance;
using subsel::testing::random_instance;

TEST(RandomSelection, ProducesValidSubset) {
  const Instance instance = random_instance(100, 4, 701);
  const auto ground_set = instance.ground_set();
  const auto result = random_selection(ground_set, ObjectiveParams{0.9, 0.1}, 20, 1);
  EXPECT_EQ(result.selected.size(), 20u);
  std::set<NodeId> unique(result.selected.begin(), result.selected.end());
  EXPECT_EQ(unique.size(), 20u);
  core::PairwiseObjective objective(ground_set, ObjectiveParams{0.9, 0.1});
  EXPECT_NEAR(result.objective, objective.evaluate(result.selected), 1e-9);
}

TEST(RandomSelection, GreedyBeatsRandomOnAverage) {
  const Instance instance = random_instance(300, 6, 702);
  const auto ground_set = instance.ground_set();
  const auto params = ObjectiveParams::from_alpha(0.9);
  const double greedy =
      core::centralized_greedy(instance.graph, instance.utilities, params, 30)
          .objective;
  double random_total = 0.0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    random_total += random_selection(ground_set, params, 30, seed).objective;
  }
  EXPECT_GT(greedy, random_total / 10.0);
}

TEST(GreeDi, ReturnsKPointsAndReportsMergeSize) {
  const Instance instance = random_instance(200, 5, 703);
  const auto ground_set = instance.ground_set();
  GreeDiConfig config;
  config.objective = ObjectiveParams::from_alpha(0.9);
  config.num_machines = 8;
  const auto result = greedi(ground_set, 25, config);
  EXPECT_EQ(result.selected.size(), 25u);
  // Each machine proposes k candidates -> the merge machine holds ~m*k.
  EXPECT_EQ(result.merge_candidates, 8u * 25u);
  EXPECT_GT(result.merge_bytes, 0u);
}

TEST(GreeDi, SingleMachineEqualsCentralized) {
  const Instance instance = random_instance(80, 4, 704);
  const auto ground_set = instance.ground_set();
  GreeDiConfig config;
  config.objective = ObjectiveParams::from_alpha(0.9);
  config.num_machines = 1;
  const auto result = greedi(ground_set, 15, config);
  auto centralized = core::centralized_greedy(instance.graph, instance.utilities,
                                              config.objective, 15);
  std::sort(centralized.selected.begin(), centralized.selected.end());
  EXPECT_EQ(result.selected, centralized.selected);
}

TEST(GreeDi, RandomSchemeDiffersFromContiguous) {
  const Instance instance = random_instance(150, 4, 705);
  const auto ground_set = instance.ground_set();
  GreeDiConfig config;
  config.objective = ObjectiveParams::from_alpha(0.9);
  config.num_machines = 6;
  config.scheme = PartitionScheme::kContiguous;
  const auto contiguous = greedi(ground_set, 15, config);
  config.scheme = PartitionScheme::kRandom;
  const auto random = greedi(ground_set, 15, config);
  // Both valid; objective within the same ballpark.
  EXPECT_EQ(contiguous.selected.size(), 15u);
  EXPECT_EQ(random.selected.size(), 15u);
  EXPECT_GT(random.objective, 0.5 * contiguous.objective);
}

TEST(GreeDi, QualityIsNearCentralized) {
  const Instance instance = random_instance(300, 5, 706);
  const auto ground_set = instance.ground_set();
  GreeDiConfig config;
  config.objective = ObjectiveParams::from_alpha(0.9);
  config.num_machines = 8;
  const auto distributed = greedi(ground_set, 30, config);
  const double centralized =
      core::centralized_greedy(instance.graph, instance.utilities, config.objective, 30)
          .objective;
  EXPECT_GT(distributed.objective, 0.8 * centralized);
}

TEST(LazyGreedy, MatchesEagerGreedy) {
  for (std::uint64_t seed : {711, 712, 713}) {
    const Instance instance = random_instance(60, 4, seed);
    const auto ground_set = instance.ground_set();
    for (double alpha : {0.9, 0.5}) {
      const auto params = ObjectiveParams::from_alpha(alpha);
      const auto lazy = lazy_greedy(ground_set, params, 12);
      const auto eager = core::naive_greedy(ground_set, params, 12);
      EXPECT_EQ(lazy.selected, eager.selected) << "seed " << seed;
      EXPECT_NEAR(lazy.objective, eager.objective, 1e-9);
    }
  }
}

TEST(LazyGreedy, HandlesKEqualN) {
  const Instance instance = random_instance(20, 3, 714);
  const auto ground_set = instance.ground_set();
  const auto result = lazy_greedy(ground_set, ObjectiveParams{0.9, 0.1}, 20);
  EXPECT_EQ(result.selected.size(), 20u);
}

TEST(StochasticGreedy, ProducesValidSubsetNearGreedyQuality) {
  const Instance instance = random_instance(400, 5, 715);
  const auto ground_set = instance.ground_set();
  const auto params = ObjectiveParams::from_alpha(0.9);
  const auto stochastic = stochastic_greedy(ground_set, params, 40, 0.1, 7);
  EXPECT_EQ(stochastic.selected.size(), 40u);
  std::set<NodeId> unique(stochastic.selected.begin(), stochastic.selected.end());
  EXPECT_EQ(unique.size(), 40u);

  const double greedy =
      core::centralized_greedy(instance.graph, instance.utilities, params, 40)
          .objective;
  EXPECT_GT(stochastic.objective, 0.85 * greedy);
}

TEST(StochasticGreedy, EpsilonOneSamplesSingleElement) {
  // epsilon -> 1 means sample size ~ n/k * ln(1) = 0 -> clamped to 1; still a
  // valid (if poor) subset.
  const Instance instance = random_instance(50, 3, 716);
  const auto ground_set = instance.ground_set();
  const auto result =
      stochastic_greedy(ground_set, ObjectiveParams{0.9, 0.1}, 10, 0.999, 3);
  EXPECT_EQ(result.selected.size(), 10u);
}

TEST(StochasticGreedy, DeterministicForFixedSeed) {
  const Instance instance = random_instance(100, 4, 717);
  const auto ground_set = instance.ground_set();
  const auto a = stochastic_greedy(ground_set, ObjectiveParams{0.9, 0.1}, 10, 0.1, 5);
  const auto b = stochastic_greedy(ground_set, ObjectiveParams{0.9, 0.1}, 10, 0.1, 5);
  EXPECT_EQ(a.selected, b.selected);
}

TEST(KCenter, CoversTheSpaceAndRadiusShrinksWithK) {
  const data::Dataset dataset = data::toy_dataset(600, 12, 45);
  const auto ground_set = dataset.ground_set();
  const auto params = ObjectiveParams::from_alpha(0.9);
  const auto small = greedy_k_center(dataset.embeddings, ground_set, params, 6);
  const auto large = greedy_k_center(dataset.embeddings, ground_set, params, 60);
  EXPECT_EQ(small.selected.size(), 6u);
  EXPECT_EQ(large.selected.size(), 60u);
  EXPECT_LT(large.radius, small.radius);
  EXPECT_GT(small.radius, 0.0);
}

TEST(KCenter, SelectsUniqueValidIds) {
  const data::Dataset dataset = data::toy_dataset(300, 8, 46);
  const auto ground_set = dataset.ground_set();
  const auto result = greedy_k_center(dataset.embeddings, ground_set,
                                      ObjectiveParams::from_alpha(0.9), 30);
  std::set<NodeId> unique(result.selected.begin(), result.selected.end());
  EXPECT_EQ(unique.size(), 30u);
  core::PairwiseObjective objective(ground_set, ObjectiveParams::from_alpha(0.9));
  EXPECT_NEAR(result.objective, objective.evaluate(result.selected), 1e-9);
}

TEST(KCenter, HitsEveryClusterWhenKEqualsClassCount) {
  // 12 well-separated clusters, k = 12: greedy k-center picks one point per
  // cluster (the textbook behavior the paper's diversity term approximates).
  const data::Dataset dataset = data::toy_dataset(600, 12, 47);
  const auto ground_set = dataset.ground_set();
  const auto result = greedy_k_center(dataset.embeddings, ground_set,
                                      ObjectiveParams::from_alpha(0.9), 12);
  std::set<std::uint32_t> classes;
  for (NodeId v : result.selected) {
    classes.insert(dataset.labels[static_cast<std::size_t>(v)]);
  }
  EXPECT_GE(classes.size(), 10u);  // allow mild cluster overlap
}

TEST(KCenter, PureDiversityLosesToSubmodularObjectiveOnF) {
  // k-center ignores utilities, so on f (which weighs them 9:1) the
  // submodular greedy must win.
  const data::Dataset dataset = data::toy_dataset(400, 8, 48);
  const auto ground_set = dataset.ground_set();
  const auto params = ObjectiveParams::from_alpha(0.9);
  const auto kcenter =
      greedy_k_center(dataset.embeddings, ground_set, params, 40);
  const auto greedy =
      core::centralized_greedy(dataset.graph, dataset.utilities, params, 40);
  EXPECT_GT(greedy.objective, kcenter.objective);
}

}  // namespace
}  // namespace subsel::baselines
