// Quantized embedding path: conversion exactness, backend bit-identity of
// the compact similarity kernels, bounded-error/bounded-recall guarantees of
// the quantized graph builds against the exact float32 builds, and the
// exact-rescore contract (edge weights of a quantized build are exact dots).
#include "graph/quantized_embedding.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>

#include "common/rng.h"
#include "common/simd.h"
#include "graph/embedding_matrix.h"
#include "graph/hnsw.h"
#include "graph/knn.h"
#include "graph/pca.h"

namespace subsel::graph {
namespace {

EmbeddingMatrix random_normalized(std::size_t rows, std::size_t dim,
                                  std::uint64_t seed) {
  EmbeddingMatrix m(rows, dim);
  subsel::Rng rng(seed);
  for (std::size_t i = 0; i < rows; ++i) {
    for (float& v : m.row(i)) v = static_cast<float>(rng.normal());
  }
  m.normalize_rows();
  return m;
}

EmbeddingMatrix clustered(std::size_t rows, std::size_t dim, std::size_t clusters,
                          std::uint64_t seed) {
  EmbeddingMatrix centers = random_normalized(clusters, dim, seed);
  EmbeddingMatrix m(rows, dim);
  subsel::Rng rng(seed + 1);
  for (std::size_t i = 0; i < rows; ++i) {
    const auto c = centers.row(i % clusters);
    auto row = m.row(i);
    for (std::size_t d = 0; d < dim; ++d) {
      row[d] = c[d] + 0.1f * static_cast<float>(rng.normal());
    }
  }
  m.normalize_rows();
  return m;
}

// ---------------------------------------------------------------------------
// Half-precision conversion.
// ---------------------------------------------------------------------------

TEST(HalfConversion, RoundTripsExactHalfValues) {
  // Every finite half value must survive half -> float -> half unchanged
  // (float holds every half exactly; float_to_half of an exact half value
  // has zero rounding error).
  for (std::uint32_t bits = 0; bits < 0x10000u; ++bits) {
    const auto h = static_cast<std::uint16_t>(bits);
    const std::uint32_t exp = (h >> 10) & 0x1Fu;
    if (exp == 31) continue;  // inf/NaN payloads are normalized, skip
    const float f = half_to_float(h);
    EXPECT_EQ(float_to_half(f), h) << "half bits " << bits;
  }
}

TEST(HalfConversion, KnownValues) {
  EXPECT_EQ(half_to_float(0x3C00), 1.0f);
  EXPECT_EQ(half_to_float(0xBC00), -1.0f);
  EXPECT_EQ(half_to_float(0x4000), 2.0f);
  EXPECT_EQ(half_to_float(0x3800), 0.5f);
  EXPECT_EQ(half_to_float(0x0000), 0.0f);
  EXPECT_EQ(half_to_float(0x0001), std::ldexp(1.0f, -24));  // min subnormal
  EXPECT_EQ(half_to_float(0x0400), std::ldexp(1.0f, -14));  // min normal
  EXPECT_EQ(half_to_float(0x7BFF), 65504.0f);               // max finite
  EXPECT_TRUE(std::isinf(half_to_float(0x7C00)));

  EXPECT_EQ(float_to_half(1.0f), 0x3C00);
  EXPECT_EQ(float_to_half(-2.0f), 0xC000);
  EXPECT_EQ(float_to_half(65504.0f), 0x7BFF);
  EXPECT_EQ(float_to_half(1e6f), 0x7C00);    // overflow -> inf
  EXPECT_EQ(float_to_half(1e-10f), 0x0000);  // underflow -> 0
  // Round-to-nearest-even: 1 + 2^-11 is exactly halfway between 1.0 and the
  // next half (1 + 2^-10); even mantissa wins.
  EXPECT_EQ(float_to_half(1.0f + std::ldexp(1.0f, -11)), 0x3C00);
  EXPECT_EQ(float_to_half(1.0f + 3 * std::ldexp(1.0f, -11)), 0x3C02);
}

TEST(HalfConversion, RelativeErrorBounded) {
  subsel::Rng rng(1234);
  for (int i = 0; i < 2000; ++i) {
    const float x = static_cast<float>(rng.uniform(-2.0, 2.0));
    const float back = half_to_float(float_to_half(x));
    // Half has an 11-bit significand: relative error <= 2^-11 for normals.
    EXPECT_NEAR(back, x, std::abs(x) * 0x1p-11f + 1e-7f);
  }
}

// ---------------------------------------------------------------------------
// QuantizedMatrix kernels.
// ---------------------------------------------------------------------------

TEST(QuantizedMatrix, Int8DequantizeBoundedError) {
  const auto m = random_normalized(40, 24, 11);
  const QuantizedMatrix q(m, EmbeddingPrecision::kInt8);
  EXPECT_EQ(q.rows(), 40u);
  EXPECT_EQ(q.dim(), 24u);
  std::vector<float> row(24);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    q.dequantize(i, row);
    float max_abs = 0.0f;
    for (const float x : m.row(i)) max_abs = std::max(max_abs, std::fabs(x));
    for (std::size_t d = 0; d < 24; ++d) {
      // Symmetric int8: per-coordinate error <= scale/2 = max|x| / 254.
      EXPECT_NEAR(row[d], m.row(i)[d], max_abs / 254.0f + 1e-7f);
    }
  }
}

TEST(QuantizedMatrix, SimilarityTracksExactDot) {
  const auto m = random_normalized(60, 32, 12);
  for (const EmbeddingPrecision precision :
       {EmbeddingPrecision::kInt8, EmbeddingPrecision::kFloat16}) {
    const QuantizedMatrix q(m, precision);
    for (std::size_t i = 0; i < 20; ++i) {
      for (std::size_t j = 0; j < 20; ++j) {
        const float exact = dot(m.row(i), m.row(j));
        // Unit-norm rows: int8 error per coordinate <= max|x|/254, float16
        // <= 2^-11 relative; both comfortably under 0.02 for the dot of
        // 32-d unit vectors.
        EXPECT_NEAR(q.similarity(i, j), exact, 0.02f)
            << precision_name(precision) << " (" << i << "," << j << ")";
      }
    }
  }
}

TEST(QuantizedMatrix, BackendsBitIdentical) {
  const auto m = random_normalized(50, 37, 13);  // odd dim: tail path runs
  for (const EmbeddingPrecision precision :
       {EmbeddingPrecision::kInt8, EmbeddingPrecision::kFloat16}) {
    const QuantizedMatrix native(m, precision);
    simd::ScopedBackendOverride force(simd::Backend::kScalar);
    const QuantizedMatrix scalar(m, precision);
    EXPECT_STREQ(scalar.backend(), "scalar");
    for (std::size_t i = 0; i < m.rows(); ++i) {
      for (std::size_t j = 0; j < m.rows(); ++j) {
        EXPECT_EQ(native.similarity(i, j), scalar.similarity(i, j))
            << precision_name(precision) << " (" << i << "," << j << ")";
      }
    }
  }
}

TEST(QuantizedMatrix, ByteSizeReflectsCompression) {
  const auto m = random_normalized(100, 64, 14);
  const std::size_t float_bytes = 100 * 64 * sizeof(float);
  const QuantizedMatrix i8(m, EmbeddingPrecision::kInt8);
  const QuantizedMatrix f16(m, EmbeddingPrecision::kFloat16);
  EXPECT_LT(i8.byte_size(), float_bytes / 3);   // ~4x smaller (+ scales)
  EXPECT_EQ(f16.byte_size(), float_bytes / 2);  // exactly 2x smaller
}

// ---------------------------------------------------------------------------
// Quantized graph builds: bounded recall vs the exact build, exact weights.
// ---------------------------------------------------------------------------

double recall_against(const std::vector<NeighborList>& truth,
                      const std::vector<NeighborList>& approx) {
  std::size_t hits = 0, total = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    std::set<NodeId> truth_ids;
    for (const Edge& e : truth[i].edges) truth_ids.insert(e.neighbor);
    for (const Edge& e : approx[i].edges) hits += truth_ids.count(e.neighbor);
    total += truth[i].edges.size();
  }
  return static_cast<double>(hits) / static_cast<double>(total);
}

/// Every edge of a quantized build must carry the exact float32 similarity
/// (clamped) — the rescore contract.
void expect_exact_weights(const std::vector<NeighborList>& lists,
                          const EmbeddingMatrix& m) {
  for (std::size_t i = 0; i < lists.size(); ++i) {
    for (const Edge& e : lists[i].edges) {
      const float exact =
          dot(m.row(i), m.row(static_cast<std::size_t>(e.neighbor)));
      EXPECT_EQ(e.weight, exact > 0.0f ? exact : 0.0f)
          << "row " << i << " edge " << e.neighbor;
    }
  }
}

TEST(QuantizedKnn, BruteForceHighRecallAndExactWeights) {
  const auto m = random_normalized(300, 24, 21);
  KnnConfig exact_config;
  exact_config.num_neighbors = 10;
  const auto exact = brute_force_knn(m, exact_config);

  for (const EmbeddingPrecision precision :
       {EmbeddingPrecision::kInt8, EmbeddingPrecision::kFloat16}) {
    KnnConfig config = exact_config;
    config.precision = precision;
    const auto quantized = brute_force_knn(m, config);
    EXPECT_GT(recall_against(exact, quantized), 0.9)
        << precision_name(precision);
    expect_exact_weights(quantized, m);
  }
}

TEST(QuantizedKnn, IvfHighRecallOnClusteredData) {
  const auto m = clustered(1500, 16, 15, 22);
  KnnConfig config;
  config.num_neighbors = 10;
  config.num_clusters = 15;
  config.num_probes = 4;
  const auto exact = brute_force_knn(m, config);

  for (const EmbeddingPrecision precision :
       {EmbeddingPrecision::kInt8, EmbeddingPrecision::kFloat16}) {
    KnnConfig qconfig = config;
    qconfig.precision = precision;
    IvfIndex index(m, qconfig);
    const auto approx = index.knn_graph();
    EXPECT_GT(recall_against(exact, approx), 0.9) << precision_name(precision);
    expect_exact_weights(approx, m);
  }
}

TEST(QuantizedHnsw, HighRecallAndExactWeights) {
  const auto m = clustered(800, 16, 10, 23);
  KnnConfig knn_config;
  knn_config.num_neighbors = 10;
  const auto exact = brute_force_knn(m, knn_config);

  // HNSW is itself approximate; the quantized bound is relative to the
  // float32 build of the same config (quantization loss, not HNSW loss),
  // plus an absolute floor.
  HnswConfig float_config;
  const HnswIndex float_index(m, float_config);
  const double float_recall =
      recall_against(exact, float_index.knn_graph(10));

  for (const EmbeddingPrecision precision :
       {EmbeddingPrecision::kInt8, EmbeddingPrecision::kFloat16}) {
    HnswConfig config;
    config.precision = precision;
    const HnswIndex index(m, config);
    const auto approx = index.knn_graph(10);
    const double recall = recall_against(exact, approx);
    EXPECT_GT(recall, float_recall - 0.08) << precision_name(precision);
    EXPECT_GT(recall, 0.7) << precision_name(precision);
    // HNSW's knn_graph reports raw (unclamped) exact dots.
    for (std::size_t i = 0; i < approx.size(); ++i) {
      for (const Edge& e : approx[i].edges) {
        EXPECT_EQ(e.weight,
                  dot(m.row(i), m.row(static_cast<std::size_t>(e.neighbor))));
      }
    }
  }
}

TEST(QuantizedHnsw, Float32PathUnchanged) {
  // The default config must take the exact path: identical lists to an
  // explicitly-float32 build (construction and search untouched).
  const auto m = random_normalized(200, 12, 24);
  HnswConfig config;
  const HnswIndex a(m, config);
  config.precision = EmbeddingPrecision::kFloat32;
  const HnswIndex b(m, config);
  const auto la = a.knn_graph(5);
  const auto lb = b.knn_graph(5);
  ASSERT_EQ(la.size(), lb.size());
  for (std::size_t i = 0; i < la.size(); ++i) {
    ASSERT_EQ(la[i].edges.size(), lb[i].edges.size());
    for (std::size_t e = 0; e < la[i].edges.size(); ++e) {
      EXPECT_EQ(la[i].edges[e].neighbor, lb[i].edges[e].neighbor);
      EXPECT_EQ(la[i].edges[e].weight, lb[i].edges[e].weight);
    }
  }
}

TEST(QuantizedPca, ProjectionCloseToFloatProjection) {
  const auto m = clustered(400, 16, 8, 25);
  const Projection2D exact = pca_project_2d(m);
  for (const EmbeddingPrecision precision :
       {EmbeddingPrecision::kInt8, EmbeddingPrecision::kFloat16}) {
    const QuantizedMatrix q(m, precision);
    const Projection2D approx = pca_project_2d(q);
    ASSERT_EQ(approx.x.size(), exact.x.size());
    // Power iteration from the same seed on slightly-perturbed inputs: the
    // layouts must correlate strongly (sign-aligned per component).
    double dot_x = 0.0, nx_a = 0.0, nx_b = 0.0;
    double dot_y = 0.0, ny_a = 0.0, ny_b = 0.0;
    for (std::size_t i = 0; i < exact.x.size(); ++i) {
      dot_x += exact.x[i] * approx.x[i];
      nx_a += exact.x[i] * exact.x[i];
      nx_b += approx.x[i] * approx.x[i];
      dot_y += exact.y[i] * approx.y[i];
      ny_a += exact.y[i] * exact.y[i];
      ny_b += approx.y[i] * approx.y[i];
    }
    const double corr_x = std::abs(dot_x) / std::sqrt(nx_a * nx_b);
    const double corr_y = std::abs(dot_y) / std::sqrt(ny_a * ny_b);
    EXPECT_GT(corr_x, 0.99) << precision_name(precision);
    EXPECT_GT(corr_y, 0.95) << precision_name(precision);
  }
}

}  // namespace
}  // namespace subsel::graph
