#include "graph/knn.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "graph/embedding_matrix.h"

namespace subsel::graph {
namespace {

EmbeddingMatrix random_normalized(std::size_t rows, std::size_t dim,
                                  std::uint64_t seed) {
  EmbeddingMatrix m(rows, dim);
  subsel::Rng rng(seed);
  for (std::size_t i = 0; i < rows; ++i) {
    for (float& v : m.row(i)) v = static_cast<float>(rng.normal());
  }
  m.normalize_rows();
  return m;
}

/// Clustered embeddings: `clusters` tight groups so ANN recall is meaningful.
EmbeddingMatrix clustered(std::size_t rows, std::size_t dim, std::size_t clusters,
                          std::uint64_t seed) {
  EmbeddingMatrix centers = random_normalized(clusters, dim, seed);
  EmbeddingMatrix m(rows, dim);
  subsel::Rng rng(seed + 1);
  for (std::size_t i = 0; i < rows; ++i) {
    const auto c = centers.row(i % clusters);
    auto row = m.row(i);
    for (std::size_t d = 0; d < dim; ++d) {
      row[d] = c[d] + 0.1f * static_cast<float>(rng.normal());
    }
  }
  m.normalize_rows();
  return m;
}

TEST(EmbeddingMatrix, NormalizeRowsMakesUnitNorm) {
  auto m = random_normalized(10, 8, 1);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    EXPECT_NEAR(dot(m.row(i), m.row(i)), 1.0f, 1e-5f);
  }
}

TEST(EmbeddingMatrix, DotMatchesManualSum) {
  EmbeddingMatrix m(2, 5);
  for (std::size_t d = 0; d < 5; ++d) {
    m.row(0)[d] = static_cast<float>(d + 1);
    m.row(1)[d] = 2.0f;
  }
  EXPECT_FLOAT_EQ(dot(m.row(0), m.row(1)), 2.0f * (1 + 2 + 3 + 4 + 5));
}

TEST(EmbeddingMatrix, SquaredL2) {
  EmbeddingMatrix m(2, 3);
  m.row(0)[0] = 1.0f;
  m.row(1)[1] = 2.0f;
  EXPECT_FLOAT_EQ(squared_l2(m.row(0), m.row(1)), 1.0f + 4.0f);
}

TEST(BruteForceKnn, FindsExactNeighborsOnLine) {
  // Points on a 1-D arc: nearest neighbors are adjacent indices.
  const std::size_t n = 20;
  EmbeddingMatrix m(n, 2);
  for (std::size_t i = 0; i < n; ++i) {
    const float angle = 0.05f * static_cast<float>(i);
    m.row(i)[0] = std::cos(angle);
    m.row(i)[1] = std::sin(angle);
  }
  KnnConfig config;
  config.num_neighbors = 2;
  const auto lists = brute_force_knn(m, config);
  // Interior points: neighbors are i-1 and i+1.
  for (std::size_t i = 1; i + 1 < n; ++i) {
    std::set<NodeId> ids;
    for (const Edge& e : lists[i].edges) ids.insert(e.neighbor);
    EXPECT_TRUE(ids.count(static_cast<NodeId>(i - 1)));
    EXPECT_TRUE(ids.count(static_cast<NodeId>(i + 1)));
  }
}

TEST(BruteForceKnn, ExcludesSelf) {
  auto m = random_normalized(50, 8, 2);
  KnnConfig config;
  config.num_neighbors = 5;
  const auto lists = brute_force_knn(m, config);
  for (std::size_t i = 0; i < lists.size(); ++i) {
    EXPECT_EQ(lists[i].edges.size(), 5u);
    for (const Edge& e : lists[i].edges) {
      EXPECT_NE(e.neighbor, static_cast<NodeId>(i));
      EXPECT_GE(e.weight, 0.0f);
    }
  }
}

TEST(BruteForceKnn, NeighborsSortedByDescendingSimilarity) {
  auto m = random_normalized(100, 16, 3);
  KnnConfig config;
  config.num_neighbors = 10;
  const auto lists = brute_force_knn(m, config);
  for (const auto& list : lists) {
    for (std::size_t e = 1; e < list.edges.size(); ++e) {
      EXPECT_GE(list.edges[e - 1].weight, list.edges[e].weight);
    }
  }
}

TEST(IvfIndex, HighRecallOnClusteredData) {
  auto m = clustered(2000, 16, 20, 4);
  KnnConfig config;
  config.num_neighbors = 10;
  config.num_clusters = 20;
  config.num_probes = 4;
  const auto exact = brute_force_knn(m, config);
  IvfIndex index(m, config);
  const auto approx = index.knn_graph();

  std::size_t hits = 0, total = 0;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    std::set<NodeId> truth;
    for (const Edge& e : exact[i].edges) truth.insert(e.neighbor);
    for (const Edge& e : approx[i].edges) hits += truth.count(e.neighbor);
    total += exact[i].edges.size();
  }
  const double recall = static_cast<double>(hits) / static_cast<double>(total);
  EXPECT_GT(recall, 0.95);
}

TEST(IvfIndex, FullProbeEqualsBruteForce) {
  auto m = random_normalized(300, 8, 5);
  KnnConfig config;
  config.num_neighbors = 5;
  config.num_clusters = 10;
  config.num_probes = 10;  // probe everything -> exhaustive search
  const auto exact = brute_force_knn(m, config);
  IvfIndex index(m, config);
  const auto approx = index.knn_graph();
  for (std::size_t i = 0; i < m.rows(); ++i) {
    ASSERT_EQ(exact[i].edges.size(), approx[i].edges.size());
    for (std::size_t e = 0; e < exact[i].edges.size(); ++e) {
      EXPECT_EQ(exact[i].edges[e].neighbor, approx[i].edges[e].neighbor);
    }
  }
}

TEST(IvfIndex, DefaultClusterCountIsSqrtN) {
  auto m = random_normalized(400, 8, 6);
  KnnConfig config;
  IvfIndex index(m, config);
  EXPECT_EQ(index.num_clusters(), 20u);
}

TEST(BuildSimilarityGraph, ProducesSymmetricGraphWithMinDegreeK) {
  auto m = clustered(500, 16, 10, 7);
  KnnConfig config;
  config.num_neighbors = 10;
  const auto graph = build_similarity_graph(m, config, /*exact_threshold=*/1000);
  EXPECT_EQ(graph.num_nodes(), 500u);
  EXPECT_TRUE(graph.is_symmetric());
  // Symmetrization can only add edges, so min degree >= 10 (the paper's
  // "at least 10 neighbors" with average ~15).
  EXPECT_GE(graph.min_degree(), 10u);
  EXPECT_GE(graph.average_degree(), 10.0);
  EXPECT_LE(graph.average_degree(), 20.0);
}

TEST(BuildSimilarityGraph, IvfPathAlsoSymmetric) {
  auto m = clustered(600, 16, 12, 8);
  KnnConfig config;
  config.num_neighbors = 5;
  const auto graph = build_similarity_graph(m, config, /*exact_threshold=*/100);
  EXPECT_TRUE(graph.is_symmetric());
  EXPECT_GE(graph.min_degree(), 5u);
}

}  // namespace
}  // namespace subsel::graph
