#include "graph/ground_set.h"

#include <gtest/gtest.h>

namespace subsel::graph {
namespace {

TEST(InMemoryGroundSet, ExposesGraphAndUtilities) {
  std::vector<NeighborList> lists(3);
  lists[0].edges = {{1, 0.5f}};
  lists[1].edges = {{0, 0.5f}, {2, 0.25f}};
  lists[2].edges = {{1, 0.25f}};
  const auto graph = SimilarityGraph::from_lists(lists);
  const std::vector<double> utilities{1.0, 2.0, 3.0};
  InMemoryGroundSet ground_set(graph, utilities);

  EXPECT_EQ(ground_set.num_points(), 3u);
  EXPECT_EQ(ground_set.utility(1), 2.0);
  EXPECT_EQ(ground_set.degree(1), 2u);

  std::vector<Edge> neighbors;
  ground_set.neighbors(1, neighbors);
  ASSERT_EQ(neighbors.size(), 2u);
  EXPECT_EQ(neighbors[0].neighbor, 0);
  EXPECT_EQ(neighbors[1].neighbor, 2);
}

TEST(InMemoryGroundSet, NeighborBufferIsReused) {
  std::vector<NeighborList> lists(2);
  lists[0].edges = {{1, 0.5f}};
  lists[1].edges = {{0, 0.5f}};
  const auto graph = SimilarityGraph::from_lists(lists);
  const std::vector<double> utilities{1.0, 1.0};
  InMemoryGroundSet ground_set(graph, utilities);

  std::vector<Edge> buffer;
  ground_set.neighbors(0, buffer);
  EXPECT_EQ(buffer.size(), 1u);
  ground_set.neighbors(1, buffer);
  EXPECT_EQ(buffer.size(), 1u);
  EXPECT_EQ(buffer[0].neighbor, 0);
}

TEST(InMemoryGroundSet, DefaultDegreeFallbackMatches) {
  // Exercise the base-class default degree() via a minimal custom view.
  class MinimalView final : public GroundSet {
   public:
    std::size_t num_points() const override { return 2; }
    double utility(NodeId) const override { return 1.0; }
    void neighbors(NodeId v, std::vector<Edge>& out) const override {
      out.clear();
      if (v == 0) out.push_back(Edge{1, 0.5f});
    }
  };
  MinimalView view;
  EXPECT_EQ(view.degree(0), 1u);
  EXPECT_EQ(view.degree(1), 0u);
}

TEST(InMemoryGroundSet, NeighborsSpanIsZeroCopy) {
  std::vector<NeighborList> lists(3);
  lists[0].edges = {{1, 0.5f}};
  lists[1].edges = {{0, 0.5f}, {2, 0.25f}};
  lists[2].edges = {{1, 0.25f}};
  const auto graph = SimilarityGraph::from_lists(lists);
  const std::vector<double> utilities{1.0, 2.0, 3.0};
  InMemoryGroundSet ground_set(graph, utilities);

  std::vector<Edge> scratch;
  const auto span = ground_set.neighbors_span(1, scratch);
  ASSERT_EQ(span.size(), 2u);
  EXPECT_EQ(span[0].neighbor, 0);
  EXPECT_EQ(span[1].neighbor, 2);
  // Zero-copy: the view aliases the CSR storage and never touches scratch.
  EXPECT_TRUE(scratch.empty());
  EXPECT_EQ(span.data(), graph.neighbors(1).data());
}

TEST(GroundSet, NeighborsSpanDefaultFallsBackToCopy) {
  class CopyOnlyView final : public GroundSet {
   public:
    std::size_t num_points() const override { return 2; }
    double utility(NodeId) const override { return 1.0; }
    void neighbors(NodeId v, std::vector<Edge>& out) const override {
      out.clear();
      out.push_back(Edge{v == 0 ? NodeId{1} : NodeId{0}, 0.75f});
    }
  };
  CopyOnlyView view;
  std::vector<Edge> scratch;
  const auto span = view.neighbors_span(0, scratch);
  ASSERT_EQ(span.size(), 1u);
  EXPECT_EQ(span[0].neighbor, 1);
  EXPECT_EQ(span.data(), scratch.data());  // view over the scratch copy
}

TEST(GroundSet, VisitNeighborsSeesEveryEdge) {
  std::vector<NeighborList> lists(3);
  lists[0].edges = {{1, 0.5f}, {2, 0.125f}};
  lists[1].edges = {{0, 0.5f}};
  lists[2].edges = {{0, 0.125f}};
  const auto graph = SimilarityGraph::from_lists(lists);
  const std::vector<double> utilities{1.0, 1.0, 1.0};
  InMemoryGroundSet ground_set(graph, utilities);

  std::vector<Edge> scratch;
  double weight_sum = 0.0;
  std::size_t count = 0;
  ground_set.visit_neighbors(0, scratch, [&](const Edge& e) {
    weight_sum += e.weight;
    ++count;
  });
  EXPECT_EQ(count, 2u);
  EXPECT_FLOAT_EQ(static_cast<float>(weight_sum), 0.625f);
}

}  // namespace
}  // namespace subsel::graph
