#include "graph/ground_set.h"

#include <gtest/gtest.h>

namespace subsel::graph {
namespace {

TEST(InMemoryGroundSet, ExposesGraphAndUtilities) {
  std::vector<NeighborList> lists(3);
  lists[0].edges = {{1, 0.5f}};
  lists[1].edges = {{0, 0.5f}, {2, 0.25f}};
  lists[2].edges = {{1, 0.25f}};
  const auto graph = SimilarityGraph::from_lists(lists);
  const std::vector<double> utilities{1.0, 2.0, 3.0};
  InMemoryGroundSet ground_set(graph, utilities);

  EXPECT_EQ(ground_set.num_points(), 3u);
  EXPECT_EQ(ground_set.utility(1), 2.0);
  EXPECT_EQ(ground_set.degree(1), 2u);

  std::vector<Edge> neighbors;
  ground_set.neighbors(1, neighbors);
  ASSERT_EQ(neighbors.size(), 2u);
  EXPECT_EQ(neighbors[0].neighbor, 0);
  EXPECT_EQ(neighbors[1].neighbor, 2);
}

TEST(InMemoryGroundSet, NeighborBufferIsReused) {
  std::vector<NeighborList> lists(2);
  lists[0].edges = {{1, 0.5f}};
  lists[1].edges = {{0, 0.5f}};
  const auto graph = SimilarityGraph::from_lists(lists);
  const std::vector<double> utilities{1.0, 1.0};
  InMemoryGroundSet ground_set(graph, utilities);

  std::vector<Edge> buffer;
  ground_set.neighbors(0, buffer);
  EXPECT_EQ(buffer.size(), 1u);
  ground_set.neighbors(1, buffer);
  EXPECT_EQ(buffer.size(), 1u);
  EXPECT_EQ(buffer[0].neighbor, 0);
}

TEST(InMemoryGroundSet, DefaultDegreeFallbackMatches) {
  // Exercise the base-class default degree() via a minimal custom view.
  class MinimalView final : public GroundSet {
   public:
    std::size_t num_points() const override { return 2; }
    double utility(NodeId) const override { return 1.0; }
    void neighbors(NodeId v, std::vector<Edge>& out) const override {
      out.clear();
      if (v == 0) out.push_back(Edge{1, 0.5f});
    }
  };
  MinimalView view;
  EXPECT_EQ(view.degree(0), 1u);
  EXPECT_EQ(view.degree(1), 0u);
}

}  // namespace
}  // namespace subsel::graph
