#include "graph/similarity_graph.h"

#include <gtest/gtest.h>

#include <filesystem>

namespace subsel::graph {
namespace {

std::vector<NeighborList> triangle_lists() {
  // 0 -- 1 (0.5), 1 -- 2 (0.25), directed: only forward edges given.
  std::vector<NeighborList> lists(3);
  lists[0].edges = {{1, 0.5f}};
  lists[1].edges = {{2, 0.25f}};
  return lists;
}

TEST(SimilarityGraph, FromListsBuildsCsr) {
  const auto graph = SimilarityGraph::from_lists(triangle_lists());
  EXPECT_EQ(graph.num_nodes(), 3u);
  EXPECT_EQ(graph.num_edges(), 2u);
  ASSERT_EQ(graph.degree(0), 1u);
  EXPECT_EQ(graph.neighbors(0)[0].neighbor, 1);
  EXPECT_FLOAT_EQ(graph.neighbors(0)[0].weight, 0.5f);
  EXPECT_EQ(graph.degree(2), 0u);
}

TEST(SimilarityGraph, NeighborsSortedById) {
  std::vector<NeighborList> lists(4);
  lists[0].edges = {{3, 0.1f}, {1, 0.2f}, {2, 0.3f}};
  const auto graph = SimilarityGraph::from_lists(lists);
  const auto neighbors = graph.neighbors(0);
  ASSERT_EQ(neighbors.size(), 3u);
  EXPECT_EQ(neighbors[0].neighbor, 1);
  EXPECT_EQ(neighbors[1].neighbor, 2);
  EXPECT_EQ(neighbors[2].neighbor, 3);
}

TEST(SimilarityGraph, RejectsSelfLoop) {
  std::vector<NeighborList> lists(2);
  lists[0].edges = {{0, 0.5f}};
  EXPECT_THROW(SimilarityGraph::from_lists(lists), std::invalid_argument);
}

TEST(SimilarityGraph, RejectsDuplicateNeighbor) {
  std::vector<NeighborList> lists(2);
  lists[0].edges = {{1, 0.5f}, {1, 0.4f}};
  EXPECT_THROW(SimilarityGraph::from_lists(lists), std::invalid_argument);
}

TEST(SimilarityGraph, RejectsOutOfRangeNeighbor) {
  std::vector<NeighborList> lists(2);
  lists[0].edges = {{5, 0.5f}};
  EXPECT_THROW(SimilarityGraph::from_lists(lists), std::invalid_argument);
}

TEST(SimilarityGraph, RejectsNegativeWeight) {
  std::vector<NeighborList> lists(2);
  lists[0].edges = {{1, -0.5f}};
  EXPECT_THROW(SimilarityGraph::from_lists(lists), std::invalid_argument);
}

TEST(SimilarityGraph, SymmetrizeAddsReverseEdges) {
  const auto graph = SimilarityGraph::from_lists(triangle_lists());
  EXPECT_FALSE(graph.is_symmetric());
  const auto sym = graph.symmetrized();
  EXPECT_TRUE(sym.is_symmetric());
  EXPECT_EQ(sym.num_edges(), 4u);  // both directions of both edges
  ASSERT_EQ(sym.degree(1), 2u);
  EXPECT_EQ(sym.neighbors(1)[0].neighbor, 0);
  EXPECT_FLOAT_EQ(sym.neighbors(1)[0].weight, 0.5f);
}

TEST(SimilarityGraph, SymmetrizeKeepsMaxWeightOfDirections) {
  std::vector<NeighborList> lists(2);
  lists[0].edges = {{1, 0.5f}};
  lists[1].edges = {{0, 0.9f}};
  const auto sym = SimilarityGraph::from_lists(lists).symmetrized();
  EXPECT_FLOAT_EQ(sym.neighbors(0)[0].weight, 0.9f);
  EXPECT_FLOAT_EQ(sym.neighbors(1)[0].weight, 0.9f);
  EXPECT_TRUE(sym.is_symmetric());
}

TEST(SimilarityGraph, SymmetrizeIsIdempotent) {
  const auto sym = SimilarityGraph::from_lists(triangle_lists()).symmetrized();
  const auto sym2 = sym.symmetrized();
  EXPECT_EQ(sym2.num_edges(), sym.num_edges());
  EXPECT_TRUE(sym2.is_symmetric());
}

TEST(SimilarityGraph, DegreeStatistics) {
  const auto sym = SimilarityGraph::from_lists(triangle_lists()).symmetrized();
  EXPECT_EQ(sym.min_degree(), 1u);  // nodes 0 and 2
  EXPECT_EQ(sym.max_degree(), 2u);  // node 1
  EXPECT_DOUBLE_EQ(sym.average_degree(), 4.0 / 3.0);
}

TEST(SimilarityGraph, TotalEdgeWeightCountsUnorderedPairsOnce) {
  const auto sym = SimilarityGraph::from_lists(triangle_lists()).symmetrized();
  EXPECT_NEAR(sym.total_edge_weight(), 0.75, 1e-9);
}

TEST(SimilarityGraph, SaveLoadRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path() / "subsel_graph_test";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "g.bin").string();
  const auto sym = SimilarityGraph::from_lists(triangle_lists()).symmetrized();
  sym.save(path);
  const auto loaded = SimilarityGraph::load(path);
  EXPECT_EQ(loaded.num_nodes(), sym.num_nodes());
  EXPECT_EQ(loaded.num_edges(), sym.num_edges());
  for (std::size_t v = 0; v < sym.num_nodes(); ++v) {
    const auto a = sym.neighbors(static_cast<NodeId>(v));
    const auto b = loaded.neighbors(static_cast<NodeId>(v));
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t e = 0; e < a.size(); ++e) EXPECT_EQ(a[e], b[e]);
  }
  std::filesystem::remove_all(dir);
}

TEST(SimilarityGraph, EmptyGraph) {
  const auto graph = SimilarityGraph::from_lists({});
  EXPECT_EQ(graph.num_nodes(), 0u);
  EXPECT_EQ(graph.num_edges(), 0u);
  EXPECT_TRUE(graph.is_symmetric());
  EXPECT_EQ(graph.average_degree(), 0.0);
}

}  // namespace
}  // namespace subsel::graph
