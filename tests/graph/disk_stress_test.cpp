// Concurrency stress for the sharded out-of-core engine: ThreadPool workers
// hammer one DiskGroundSet with overlapping partition reads while prefetch
// tasks race them on the same pool, under a cache budget small enough that
// eviction is constant. Every neighborhood read is validated against a
// per-node checksum precomputed from the in-memory graph — a torn read, a
// block stitched at the wrong boundary, or an eviction race serving freed
// memory all change the checksum. CI additionally runs this binary under
// ThreadSanitizer (see .github/workflows/ci.yml, job tsan), which turns any
// lock-discipline mistake into a hard failure even when the data happens to
// come out right.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <vector>

#include "../testing/test_instances.h"
#include "common/thread_pool.h"
#include "graph/disk_ground_set.h"

namespace subsel::graph {
namespace {

using subsel::testing::Instance;
using subsel::testing::random_instance;

std::uint64_t edge_checksum(std::uint64_t seed, const Edge& edge) {
  std::uint32_t weight_bits = 0;
  std::memcpy(&weight_bits, &edge.weight, sizeof(weight_bits));
  std::uint64_t h = seed ^ (static_cast<std::uint64_t>(edge.neighbor) +
                            0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
  return h ^ (weight_bits * 0x100000001b3ULL);
}

std::uint64_t node_checksum(std::span<const Edge> edges) {
  std::uint64_t h = 0x5eed;
  for (const Edge& edge : edges) h = edge_checksum(h, edge);
  return h;
}

class DiskStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "subsel_disk_stress_test";
    std::filesystem::create_directories(dir_);
    instance_ = random_instance(1500, 8, 77031);
    graph_path_ = (dir_ / "stress.graph").string();
    instance_.graph.save(graph_path_);
    expected_.resize(instance_.graph.num_nodes());
    for (NodeId v = 0; v < static_cast<NodeId>(expected_.size()); ++v) {
      expected_[static_cast<std::size_t>(v)] =
          node_checksum(instance_.graph.neighbors(v));
    }
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
  Instance instance_;
  std::string graph_path_;
  std::vector<std::uint64_t> expected_;
};

TEST_F(DiskStressTest, OverlappingPartitionReadsWithConcurrentPrefetch) {
  DiskGroundSetConfig config;
  config.block_edges = 64;    // many small blocks -> constant block crossings
  config.max_cached_blocks = 12;  // far below the file -> constant eviction
  config.num_shards = 4;
  const DiskGroundSet disk(graph_path_, instance_.utilities, config);
  const auto n = static_cast<NodeId>(disk.num_points());

  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kWaves = 3;
  ThreadPool pool(kThreads);

  // Overlapping "partitions": worker w reads the window starting at w * n/16
  // of length n/2, so every pair of adjacent workers shares half its nodes
  // and every block is demanded by several workers at once. Odd workers walk
  // backwards so LRU recency is adversarial, and each worker prefetches the
  // window of the NEXT worker mid-scan — prefetch loads race demand loads on
  // the same blocks by construction.
  std::atomic<std::size_t> mismatches{0};
  for (std::size_t wave = 0; wave < kWaves; ++wave) {
    pool.parallel_for(kThreads * 2, [&](std::size_t task) {
      const std::size_t window = static_cast<std::size_t>(n) / 2;
      const std::size_t start =
          (task * static_cast<std::size_t>(n)) / (kThreads * 2);
      std::vector<Edge> scratch;
      std::vector<NodeId> prefetch_window;
      for (std::size_t step = 0; step < window; ++step) {
        const std::size_t offset = (task % 2 == 0) ? step : window - 1 - step;
        const auto v =
            static_cast<NodeId>((start + offset) % static_cast<std::size_t>(n));
        const auto edges = disk.neighbors_span(v, scratch);
        if (node_checksum(edges) != expected_[static_cast<std::size_t>(v)]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        if (step == window / 2) {
          // Race a prefetch of the next worker's window against everyone.
          prefetch_window.clear();
          for (std::size_t i = 0; i < window / 4; ++i) {
            prefetch_window.push_back(static_cast<NodeId>(
                (start + window + i) % static_cast<std::size_t>(n)));
          }
          disk.prefetch(std::span<const NodeId>(prefetch_window), &pool);
        }
      }
    });
  }
  disk.drain_prefetch();

  EXPECT_EQ(mismatches.load(), 0u) << "torn or misdirected block reads";
  const DiskCacheStats stats = disk.stats();
  EXPECT_GT(stats.misses, 0u) << "the budget must force real paging";
  EXPECT_GT(stats.prefetch_issued, 0u);
  EXPECT_LE(stats.resident_blocks_high_water, config.max_cached_blocks)
      << "the sharded cache exceeded its block budget";
  EXPECT_LE(stats.resident_blocks, config.max_cached_blocks);
}

TEST_F(DiskStressTest, SingleShardSingleBlockUnderConcurrency) {
  // The degenerate geometry (one shard, one resident block) is the worst
  // case for eviction races: every concurrent reader displaces the only
  // block. Data must still be exact.
  DiskGroundSetConfig config;
  config.block_edges = 32;
  config.max_cached_blocks = 1;
  config.num_shards = 1;
  const DiskGroundSet disk(graph_path_, instance_.utilities, config);
  const auto n = static_cast<NodeId>(disk.num_points());

  ThreadPool pool(8);
  std::atomic<std::size_t> mismatches{0};
  pool.parallel_for(16, [&](std::size_t task) {
    Rng rng(9000 + task);
    std::vector<Edge> scratch;
    for (std::size_t step = 0; step < 400; ++step) {
      const auto v = static_cast<NodeId>(rng.uniform_index(
          static_cast<std::size_t>(n)));
      const auto edges = disk.neighbors_span(v, scratch);
      if (node_checksum(edges) != expected_[static_cast<std::size_t>(v)]) {
        mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_LE(disk.stats().resident_blocks, 1u);
}

TEST_F(DiskStressTest, ConcurrentStatsReadsAreConsistent) {
  // stats() may be polled from a monitoring thread while workers read;
  // it must stay data-race-free (TSan) and monotone.
  DiskGroundSetConfig config;
  config.block_edges = 128;
  config.max_cached_blocks = 8;
  config.num_shards = 4;
  const DiskGroundSet disk(graph_path_, instance_.utilities, config);
  const auto n = static_cast<NodeId>(disk.num_points());

  ThreadPool pool(4);
  std::atomic<bool> done{false};
  auto monitor = pool.submit([&] {
    while (!done.load(std::memory_order_relaxed)) {
      // Hit counts may dip transiently mid-flush (deferred per-thread tails
      // move into the instance counter non-atomically — documented), so the
      // monitor asserts only the hard invariants: the budget and that the
      // snapshot itself is race-free (which TSan enforces).
      const DiskCacheStats stats = disk.stats();
      EXPECT_LE(stats.resident_blocks, config.max_cached_blocks);
      EXPECT_LE(stats.resident_blocks_high_water, config.max_cached_blocks);
    }
  });
  pool.parallel_for(8, [&](std::size_t task) {
    Rng rng(1234 + task);
    std::vector<Edge> edges;
    for (std::size_t step = 0; step < 500; ++step) {
      disk.neighbors(
          static_cast<NodeId>(rng.uniform_index(static_cast<std::size_t>(n))),
          edges);
    }
  });
  done.store(true, std::memory_order_relaxed);
  monitor.get();
}

}  // namespace
}  // namespace subsel::graph
