// OverlayGroundSet conformance: stable-id insert/delete semantics, the
// validate-then-commit strong exception guarantee (argument rejects and the
// "overlay.mutate" failpoint both leave the overlay untouched), the
// overlay-vs-materialized differential property (solving on the overlay and
// on its CSR snapshot must give identical selections), and the
// mutate-while-solve stress the TSan job runs.
#include "graph/overlay_ground_set.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <limits>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "../testing/property.h"
#include "../testing/test_instances.h"
#include "common/failpoint.h"
#include "core/greedy.h"
#include "core/objective_kernel.h"

namespace subsel::graph {
namespace {

using subsel::testing::check_property;
using subsel::testing::Instance;
using subsel::testing::random_instance;
using subsel::testing::scaled;

/// Full overlay state snapshot for the strong-guarantee checks.
struct Snapshot {
  std::size_t num_points;
  std::size_t num_live;
  std::uint64_t version;
  std::vector<NodeId> deleted;
  std::vector<std::vector<Edge>> neighborhoods;

  static Snapshot of(const OverlayGroundSet& overlay) {
    Snapshot snap;
    snap.num_points = overlay.num_points();
    snap.num_live = overlay.num_live();
    snap.version = overlay.version();
    snap.deleted = overlay.deleted_ids();
    snap.neighborhoods.resize(snap.num_points);
    for (std::size_t v = 0; v < snap.num_points; ++v) {
      overlay.neighbors(static_cast<NodeId>(v), snap.neighborhoods[v]);
    }
    return snap;
  }

  bool operator==(const Snapshot& other) const {
    if (num_points != other.num_points || num_live != other.num_live ||
        version != other.version || deleted != other.deleted ||
        neighborhoods.size() != other.neighborhoods.size()) {
      return false;
    }
    for (std::size_t v = 0; v < neighborhoods.size(); ++v) {
      if (neighborhoods[v].size() != other.neighborhoods[v].size()) return false;
      for (std::size_t e = 0; e < neighborhoods[v].size(); ++e) {
        if (neighborhoods[v][e].neighbor != other.neighborhoods[v][e].neighbor ||
            neighborhoods[v][e].weight != other.neighborhoods[v][e].weight) {
          return false;
        }
      }
    }
    return true;
  }
};

TEST(OverlayGroundSet, InsertAllocatesStableIdsAndSymmetricEdges) {
  const Instance instance = random_instance(10, 3, 11);
  const auto base = instance.ground_set();
  OverlayGroundSet overlay(base);
  EXPECT_EQ(overlay.num_points(), 10u);
  EXPECT_EQ(overlay.num_live(), 10u);
  EXPECT_EQ(overlay.version(), 0u);

  const std::vector<Edge> edges = {{2, 0.5f}, {5, 0.25f}};
  const NodeId a = overlay.insert(1.5, edges);
  EXPECT_EQ(a, 10);
  const NodeId b = overlay.insert(2.0, std::vector<Edge>{{a, 0.75f}});
  EXPECT_EQ(b, 11);
  EXPECT_EQ(overlay.num_points(), 12u);
  EXPECT_EQ(overlay.version(), 2u);
  EXPECT_DOUBLE_EQ(overlay.utility(a), 1.5);

  // Forward and reverse edges both visible.
  std::vector<Edge> got;
  overlay.neighbors(a, got);
  ASSERT_EQ(got.size(), 3u);  // 2, 5, and the reverse edge from b
  EXPECT_EQ(got[0].neighbor, 2);
  EXPECT_EQ(got[1].neighbor, 5);
  EXPECT_EQ(got[2].neighbor, b);
  overlay.neighbors(2, got);
  EXPECT_TRUE(std::any_of(got.begin(), got.end(),
                          [a](const Edge& e) { return e.neighbor == a; }));
}

TEST(OverlayGroundSet, EraseZeroesThePointAndFiltersNeighborLists) {
  const Instance instance = random_instance(12, 4, 17);
  const auto base = instance.ground_set();
  OverlayGroundSet overlay(base);

  std::vector<Edge> before;
  overlay.neighbors(0, before);
  ASSERT_FALSE(before.empty());
  const NodeId victim = before[0].neighbor;

  overlay.erase(victim);
  EXPECT_FALSE(overlay.is_live(victim));
  EXPECT_EQ(overlay.num_live(), 11u);
  EXPECT_EQ(overlay.num_points(), 12u);  // id space never shrinks
  EXPECT_DOUBLE_EQ(overlay.utility(victim), 0.0);
  std::vector<Edge> dead_edges;
  overlay.neighbors(victim, dead_edges);
  EXPECT_TRUE(dead_edges.empty());
  std::vector<Edge> after;
  overlay.neighbors(0, after);
  EXPECT_TRUE(std::none_of(after.begin(), after.end(), [victim](const Edge& e) {
    return e.neighbor == victim;
  }));
  EXPECT_EQ(overlay.deleted_ids(), std::vector<NodeId>{victim});

  // Live ids exclude exactly the victim.
  const std::vector<NodeId> live = overlay.live_ids();
  EXPECT_EQ(live.size(), 11u);
  EXPECT_FALSE(std::binary_search(live.begin(), live.end(), victim));
}

TEST(OverlayGroundSet, ArgumentRejectsLeaveTheOverlayUntouched) {
  const Instance instance = random_instance(8, 3, 23);
  const auto base = instance.ground_set();
  OverlayGroundSet overlay(base);
  overlay.erase(3);
  const Snapshot before = Snapshot::of(overlay);

  // insert: dead neighbor, out-of-range neighbor, negative weight,
  // non-finite utility, duplicate neighbor.
  EXPECT_THROW(overlay.insert(1.0, std::vector<Edge>{{3, 0.5f}}),
               std::invalid_argument);
  EXPECT_THROW(overlay.insert(1.0, std::vector<Edge>{{100, 0.5f}}),
               std::invalid_argument);
  EXPECT_THROW(overlay.insert(1.0, std::vector<Edge>{{1, -0.5f}}),
               std::invalid_argument);
  EXPECT_THROW(overlay.insert(std::numeric_limits<double>::quiet_NaN(),
                              std::vector<Edge>{{1, 0.5f}}),
               std::invalid_argument);
  EXPECT_THROW(overlay.insert(1.0, std::vector<Edge>{{1, 0.5f}, {1, 0.25f}}),
               std::invalid_argument);
  // erase: out of range, already deleted.
  EXPECT_THROW(overlay.erase(100), std::invalid_argument);
  EXPECT_THROW(overlay.erase(3), std::invalid_argument);

  EXPECT_TRUE(Snapshot::of(overlay) == before);
}

TEST(OverlayGroundSet, MutateFailpointHasTheStrongExceptionGuarantee) {
  const Instance instance = random_instance(8, 3, 29);
  const auto base = instance.ground_set();
  OverlayGroundSet overlay(base);
  const Snapshot before = Snapshot::of(overlay);

  failpoint::disarm_all();
  failpoint::arm_from_spec("overlay.mutate=nth(1)");
  EXPECT_THROW(overlay.insert(1.0, std::vector<Edge>{{1, 0.5f}}),
               failpoint::FailpointError);
  EXPECT_TRUE(Snapshot::of(overlay) == before);

  failpoint::arm_from_spec("overlay.mutate=nth(1)");
  EXPECT_THROW(overlay.erase(0), failpoint::FailpointError);
  EXPECT_TRUE(Snapshot::of(overlay) == before);
  failpoint::disarm_all();

  // Disarmed, the same mutations commit.
  EXPECT_NO_THROW(overlay.insert(1.0, std::vector<Edge>{{1, 0.5f}}));
  EXPECT_NO_THROW(overlay.erase(0));
  EXPECT_EQ(overlay.version(), 2u);
}

TEST(OverlayGroundSet, SolveOnOverlayMatchesSolveOnMaterialization) {
  check_property(
      "overlay vs materialized differential", 60,
      [](std::uint64_t seed, double scale) -> std::optional<std::string> {
        const std::size_t n = scaled(40, scale, 8);
        const std::size_t k = scaled(8, scale, 2);
        const Instance instance = random_instance(n, 4, seed);
        const auto base = instance.ground_set();
        OverlayGroundSet overlay(base);

        // Random mutation burst: a few deletes and inserts.
        Rng rng(seed ^ 0x0ffe);
        const std::size_t mutations = 2 + rng.uniform_index(6);
        for (std::size_t m = 0; m < mutations; ++m) {
          if (rng.uniform() < 0.5 && overlay.num_live() > k + 2) {
            const std::vector<NodeId> live = overlay.live_ids();
            overlay.erase(live[rng.uniform_index(live.size())]);
          } else {
            const std::vector<NodeId> live = overlay.live_ids();
            std::vector<Edge> edges;
            const std::size_t degree = 1 + rng.uniform_index(3);
            for (std::size_t e = 0; e < degree; ++e) {
              const NodeId target = live[rng.uniform_index(live.size())];
              const bool dup = std::any_of(
                  edges.begin(), edges.end(),
                  [target](const Edge& edge) { return edge.neighbor == target; });
              if (!dup) {
                edges.push_back(
                    Edge{target, static_cast<float>(rng.uniform(0.1, 1.0))});
              }
            }
            overlay.insert(rng.uniform(0.5, 2.0), edges);
          }
        }

        const OverlayGroundSet::Materialized materialized = overlay.materialize();
        const InMemoryGroundSet flat(materialized.graph, materialized.utilities);
        if (flat.num_points() != overlay.num_points()) {
          return "materialization changed the id space";
        }

        const auto params = core::ObjectiveParams::from_alpha(0.9);
        const core::PairwiseKernel overlay_kernel(overlay, params);
        const core::PairwiseKernel flat_kernel(flat, params);
        std::vector<NodeId> members(overlay.num_points());
        for (std::size_t i = 0; i < members.size(); ++i) {
          members[i] = static_cast<NodeId>(i);
        }
        core::SubproblemArena arena_a, arena_b;
        const core::GreedyResult on_overlay = core::solve_partition(
            overlay, members, k, overlay_kernel, nullptr, arena_a,
            core::PartitionSolver::kPriorityQueue, 0.1, seed);
        const core::GreedyResult on_flat = core::solve_partition(
            flat, members, k, flat_kernel, nullptr, arena_b,
            core::PartitionSolver::kPriorityQueue, 0.1, seed);
        if (on_overlay.selected != on_flat.selected) {
          return "selections diverge between overlay and materialization";
        }
        if (on_overlay.objective != on_flat.objective) {
          return "objectives diverge between overlay and materialization";
        }
        return std::nullopt;
      });
}

TEST(OverlayGroundSet, MutateWhileSolveStress) {
  // Readers copy under the shared lock; mutators take the exclusive lock.
  // This is the TSan target: concurrent solves, point reads, and a mutation
  // stream must be race-free (each read call sees SOME consistent state).
  const Instance instance = random_instance(120, 5, 31);
  const auto base = instance.ground_set();
  OverlayGroundSet overlay(base);
  const auto params = core::ObjectiveParams::from_alpha(0.9);

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> solves{0};

  std::thread mutator([&] {
    Rng rng(91);
    while (!stop.load(std::memory_order_relaxed)) {
      const std::vector<NodeId> live = overlay.live_ids();
      if (rng.uniform() < 0.4 && live.size() > 60) {
        overlay.erase(live[rng.uniform_index(live.size())]);
      } else {
        const NodeId target = live[rng.uniform_index(live.size())];
        overlay.insert(rng.uniform(0.5, 2.0),
                       std::vector<Edge>{{target, 0.5f}});
      }
      std::this_thread::yield();
    }
  });

  std::thread reader([&] {
    std::vector<Edge> edges;
    Rng rng(92);
    while (!stop.load(std::memory_order_relaxed)) {
      const std::size_t n = overlay.num_points();
      const auto v = static_cast<NodeId>(rng.uniform_index(n));
      overlay.neighbors(v, edges);
      for (const Edge& e : edges) {
        ASSERT_GE(e.neighbor, 0);
        ASSERT_LT(static_cast<std::size_t>(e.neighbor), overlay.num_points());
      }
      (void)overlay.utility(v);
      (void)overlay.is_live(v);
    }
  });

  // Solver thread: repeated small solves over the base id range (always
  // allocated, possibly deleted mid-solve — the solve must stay valid).
  std::vector<NodeId> members(120);
  for (std::size_t i = 0; i < 120; ++i) members[i] = static_cast<NodeId>(i);
  core::SubproblemArena arena;
  for (int iteration = 0; iteration < 30; ++iteration) {
    const core::PairwiseKernel kernel(overlay, params);
    const core::GreedyResult result = core::solve_partition(
        overlay, members, 10, kernel, nullptr, arena,
        core::PartitionSolver::kPriorityQueue, 0.1, 7);
    ASSERT_LE(result.selected.size(), 10u);
    for (const NodeId v : result.selected) {
      ASSERT_GE(v, 0);
      ASSERT_LT(static_cast<std::size_t>(v), 120u);
    }
    ++solves;
  }

  stop.store(true);
  mutator.join();
  reader.join();
  EXPECT_EQ(solves.load(), 30u);
}

}  // namespace
}  // namespace subsel::graph
