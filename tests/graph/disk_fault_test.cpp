// Fault injection against the disk layer: transient pread failures are
// absorbed by the bounded-backoff retry loop without changing any byte of
// the results, persistent failures are promoted to the typed kIo error,
// prefetch failures degrade into counted demand misses, and an open fault
// surfaces as the same typed error a real unreachable file would.
#include "graph/disk_ground_set.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <vector>

#include "common/failpoint.h"
#include "data/datasets.h"

namespace subsel::graph {
namespace {

class DiskFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    failpoint::disarm_all();
    dir_ = std::filesystem::temp_directory_path() / "subsel_disk_fault_test";
    std::filesystem::create_directories(dir_);
    dataset_ = data::toy_dataset(800, 10, 44);
    graph_path_ = (dir_ / "graph.bin").string();
    dataset_.graph.save(graph_path_);
  }
  void TearDown() override {
    failpoint::disarm_all();
    std::filesystem::remove_all(dir_);
  }

  /// Small blocks so a full scan issues enough preads to matter.
  static DiskGroundSetConfig small_blocks() {
    DiskGroundSetConfig config;
    config.block_edges = 64;
    config.max_cached_blocks = 8;
    config.num_shards = 4;
    return config;
  }

  std::filesystem::path dir_;
  data::Dataset dataset_;
  std::string graph_path_;
};

TEST_F(DiskFaultTest, TransientReadFaultsAreRetriedWithoutChangingResults) {
  // Open clean, then fail every 5th pread attempt. Because a failed attempt
  // is itself a hit, every(5) can never produce the 6 consecutive failures
  // that would promote to kIo — every read eventually succeeds.
  const DiskGroundSet disk(graph_path_, dataset_.utilities, small_blocks());
  const InMemoryGroundSet memory(dataset_.graph, dataset_.utilities);
  failpoint::arm_from_spec("disk.pread=every(5)");

  std::vector<Edge> disk_edges, memory_edges;
  for (NodeId v = 0; v < static_cast<NodeId>(disk.num_points()); ++v) {
    disk.neighbors(v, disk_edges);
    memory.neighbors(v, memory_edges);
    ASSERT_EQ(disk_edges, memory_edges) << "node " << v;
  }
  EXPECT_GT(disk.stats().read_retries, 0u)
      << "the injected faults should have exercised the retry loop";
}

TEST_F(DiskFaultTest, PersistentReadFaultsPromoteToTypedIoError) {
  const DiskGroundSet disk(graph_path_, dataset_.utilities, small_blocks());
  failpoint::arm_from_spec("disk.pread=every(1)");
  std::vector<Edge> edges;
  try {
    disk.neighbors(0, edges);
    FAIL() << "expected DiskFormatError";
  } catch (const DiskFormatError& e) {
    EXPECT_EQ(e.kind(), DiskFormatError::Kind::kIo);
  }
  // The instance is not poisoned: disarm and the same read succeeds.
  failpoint::disarm_all();
  disk.neighbors(0, edges);
  EXPECT_EQ(edges.size(), disk.degree(0));
}

TEST_F(DiskFaultTest, PrefetchFaultsDegradeIntoCountedMisses) {
  const DiskGroundSet disk(graph_path_, dataset_.utilities, small_blocks());
  failpoint::arm_from_spec("disk.prefetch=nth(1)");

  std::vector<NodeId> nodes;
  for (NodeId v = 0; v < 64; ++v) nodes.push_back(v);
  // Inline (pool-less) prefetch: the hint fails silently, never throws.
  EXPECT_NO_THROW(disk.prefetch(nodes, nullptr));
  EXPECT_GT(disk.stats().prefetch_degraded, 0u);

  // The abandoned hints degrade into ordinary demand reads: results intact.
  failpoint::disarm_all();
  const InMemoryGroundSet memory(dataset_.graph, dataset_.utilities);
  std::vector<Edge> disk_edges, memory_edges;
  for (NodeId v : nodes) {
    disk.neighbors(v, disk_edges);
    memory.neighbors(v, memory_edges);
    ASSERT_EQ(disk_edges, memory_edges) << "node " << v;
  }
}

TEST_F(DiskFaultTest, OpenFaultThrowsTypedError) {
  failpoint::arm_from_spec("disk.open=nth(1)");
  try {
    const DiskGroundSet disk(graph_path_, dataset_.utilities);
    FAIL() << "expected DiskFormatError";
  } catch (const DiskFormatError& e) {
    EXPECT_EQ(e.kind(), DiskFormatError::Kind::kOpen);
    EXPECT_NE(std::string(e.what()).find("injected fault at 'disk.open'"),
              std::string::npos);
  }
  // nth(1) is spent: the next open succeeds.
  EXPECT_NO_THROW(DiskGroundSet(graph_path_, dataset_.utilities));
}

TEST_F(DiskFaultTest, CacheBudgetHeldUnderInjectedFaults) {
  const auto config = small_blocks();
  const DiskGroundSet disk(graph_path_, dataset_.utilities, config);
  failpoint::arm_from_spec("disk.pread=every(7);disk.prefetch=every(3)");

  std::vector<NodeId> nodes;
  for (NodeId v = 0; v < static_cast<NodeId>(disk.num_points()); ++v) {
    nodes.push_back(v);
  }
  disk.prefetch(nodes, nullptr);
  std::vector<Edge> edges;
  for (NodeId v : nodes) disk.neighbors(v, edges);

  const DiskCacheStats stats = disk.stats();
  EXPECT_LE(stats.resident_blocks_high_water, config.max_cached_blocks)
      << "faults must never inflate the residency budget";
}

}  // namespace
}  // namespace subsel::graph
