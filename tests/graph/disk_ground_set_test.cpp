// Disk-backed ground set: exact equivalence with the in-memory ground set,
// bounded residency, cache behavior, thread safety under the parallel
// bounding pass, and header validation.
#include "graph/disk_ground_set.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/bounding.h"
#include "core/distributed_greedy.h"
#include "data/datasets.h"

namespace subsel::graph {
namespace {

class DiskGroundSetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "subsel_disk_gs_test";
    std::filesystem::create_directories(dir_);
    dataset_ = data::toy_dataset(800, 10, 44);
    graph_path_ = (dir_ / "graph.bin").string();
    dataset_.graph.save(graph_path_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
  data::Dataset dataset_;
  std::string graph_path_;
};

TEST_F(DiskGroundSetTest, MatchesInMemoryGroundSetExactly) {
  const DiskGroundSet disk(graph_path_, dataset_.utilities);
  const InMemoryGroundSet memory(dataset_.graph, dataset_.utilities);

  ASSERT_EQ(disk.num_points(), memory.num_points());
  std::vector<Edge> disk_edges, memory_edges;
  for (NodeId v = 0; v < static_cast<NodeId>(disk.num_points()); ++v) {
    EXPECT_EQ(disk.utility(v), memory.utility(v));
    EXPECT_EQ(disk.degree(v), memory.degree(v));
    disk.neighbors(v, disk_edges);
    memory.neighbors(v, memory_edges);
    ASSERT_EQ(disk_edges.size(), memory_edges.size()) << "node " << v;
    for (std::size_t e = 0; e < disk_edges.size(); ++e) {
      EXPECT_EQ(disk_edges[e], memory_edges[e]) << "node " << v << " edge " << e;
    }
  }
}

TEST_F(DiskGroundSetTest, TinyCacheStillCorrect) {
  // One cached block of 8 edges: nearly every access misses, results must
  // not change.
  DiskGroundSetConfig config;
  config.block_edges = 8;
  config.max_cached_blocks = 1;
  const DiskGroundSet disk(graph_path_, dataset_.utilities, config);
  const InMemoryGroundSet memory(dataset_.graph, dataset_.utilities);

  std::vector<Edge> disk_edges, memory_edges;
  for (NodeId v = 0; v < static_cast<NodeId>(disk.num_points()); ++v) {
    disk.neighbors(v, disk_edges);
    memory.neighbors(v, memory_edges);
    ASSERT_EQ(disk_edges, memory_edges) << "node " << v;
  }
  EXPECT_GT(disk.cache_misses(), 0u);
}

TEST_F(DiskGroundSetTest, ResidencyIsBoundedAndFarBelowEdgeBytes) {
  DiskGroundSetConfig config;
  config.block_edges = 256;
  config.max_cached_blocks = 4;
  const DiskGroundSet disk(graph_path_, dataset_.utilities, config);

  const std::size_t edge_bytes = disk.num_edges() * sizeof(Edge);
  const std::size_t scalars =
      disk.num_points() * (sizeof(std::int64_t) + sizeof(double));
  EXPECT_EQ(disk.resident_bytes(),
            scalars + sizeof(std::int64_t) /*offsets has n+1 entries*/ +
                config.max_cached_blocks * config.block_edges * sizeof(Edge));
  EXPECT_LT(disk.resident_bytes() - scalars, edge_bytes / 2)
      << "cache must be much smaller than the full adjacency";
}

TEST_F(DiskGroundSetTest, SequentialScanHitsCacheMostly) {
  DiskGroundSetConfig config;
  config.block_edges = 1024;
  config.max_cached_blocks = 8;
  const DiskGroundSet disk(graph_path_, dataset_.utilities, config);
  std::vector<Edge> edges;
  for (NodeId v = 0; v < static_cast<NodeId>(disk.num_points()); ++v) {
    disk.neighbors(v, edges);
  }
  // A streaming scan touches each block ~once; hits dominate because many
  // nodes share a block.
  EXPECT_GT(disk.cache_hits(), 4 * disk.cache_misses());
}

TEST_F(DiskGroundSetTest, BoundingMatchesInMemoryDecisions) {
  const DiskGroundSet disk(graph_path_, dataset_.utilities);
  const InMemoryGroundSet memory(dataset_.graph, dataset_.utilities);

  core::BoundingConfig config;
  config.objective = core::ObjectiveParams::from_alpha(0.9);
  config.sampling = core::BoundingSampling::kUniform;
  config.sample_fraction = 0.3;

  const auto from_disk = core::bound(disk, 80, config);
  const auto from_memory = core::bound(memory, 80, config);
  EXPECT_EQ(from_disk.state.selected_ids(), from_memory.state.selected_ids());
  EXPECT_EQ(from_disk.state.unassigned_ids(), from_memory.state.unassigned_ids());
  EXPECT_EQ(from_disk.grow_rounds, from_memory.grow_rounds);
}

TEST_F(DiskGroundSetTest, DistributedGreedyMatchesInMemorySelection) {
  const DiskGroundSet disk(graph_path_, dataset_.utilities);
  const InMemoryGroundSet memory(dataset_.graph, dataset_.utilities);

  core::DistributedGreedyConfig config;
  config.objective = core::ObjectiveParams::from_alpha(0.9);
  config.num_machines = 8;
  config.num_rounds = 3;
  const auto from_disk = core::distributed_greedy(disk, 80, config);
  const auto from_memory = core::distributed_greedy(memory, 80, config);
  EXPECT_EQ(from_disk.selected, from_memory.selected);
  EXPECT_EQ(from_disk.objective, from_memory.objective);
}

TEST_F(DiskGroundSetTest, RejectsNonGraphFile) {
  const std::string bogus = (dir_ / "bogus.bin").string();
  {
    std::ofstream out(bogus, std::ios::binary);
    out << "definitely not a graph";
  }
  EXPECT_THROW(DiskGroundSet(bogus, dataset_.utilities), std::runtime_error);
}

TEST_F(DiskGroundSetTest, RejectsMissingFileAndWrongUtilityCount) {
  EXPECT_THROW(DiskGroundSet((dir_ / "missing.bin").string(), dataset_.utilities),
               std::runtime_error);
  std::vector<double> wrong(dataset_.utilities.begin(),
                            dataset_.utilities.end() - 1);
  EXPECT_THROW(DiskGroundSet(graph_path_, wrong), std::invalid_argument);
}

TEST_F(DiskGroundSetTest, RejectsBadCacheConfig) {
  DiskGroundSetConfig config;
  config.block_edges = 0;
  EXPECT_THROW(DiskGroundSet(graph_path_, dataset_.utilities, config),
               std::invalid_argument);
}

}  // namespace
}  // namespace subsel::graph
