// Disk-backed ground set: exact equivalence with the in-memory ground set,
// bounded residency, sharded-cache behavior, prefetch, thread safety under
// the parallel bounding pass, and strict typed validation of the on-disk
// format (truncation, foreign magic, bad version, corrupt offsets, and
// files that shrink underneath a live reader).
#include "graph/disk_ground_set.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>

#include "common/serialize.h"
#include "common/thread_pool.h"
#include "core/bounding.h"
#include "core/distributed_greedy.h"
#include "data/datasets.h"

namespace subsel::graph {
namespace {

class DiskGroundSetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "subsel_disk_gs_test";
    std::filesystem::create_directories(dir_);
    dataset_ = data::toy_dataset(800, 10, 44);
    graph_path_ = (dir_ / "graph.bin").string();
    dataset_.graph.save(graph_path_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
  data::Dataset dataset_;
  std::string graph_path_;
};

TEST_F(DiskGroundSetTest, MatchesInMemoryGroundSetExactly) {
  const DiskGroundSet disk(graph_path_, dataset_.utilities);
  const InMemoryGroundSet memory(dataset_.graph, dataset_.utilities);

  ASSERT_EQ(disk.num_points(), memory.num_points());
  std::vector<Edge> disk_edges, memory_edges;
  for (NodeId v = 0; v < static_cast<NodeId>(disk.num_points()); ++v) {
    EXPECT_EQ(disk.utility(v), memory.utility(v));
    EXPECT_EQ(disk.degree(v), memory.degree(v));
    disk.neighbors(v, disk_edges);
    memory.neighbors(v, memory_edges);
    ASSERT_EQ(disk_edges.size(), memory_edges.size()) << "node " << v;
    for (std::size_t e = 0; e < disk_edges.size(); ++e) {
      EXPECT_EQ(disk_edges[e], memory_edges[e]) << "node " << v << " edge " << e;
    }
  }
}

TEST_F(DiskGroundSetTest, TinyCacheStillCorrect) {
  // One cached block of 8 edges: nearly every access misses, results must
  // not change.
  DiskGroundSetConfig config;
  config.block_edges = 8;
  config.max_cached_blocks = 1;
  const DiskGroundSet disk(graph_path_, dataset_.utilities, config);
  const InMemoryGroundSet memory(dataset_.graph, dataset_.utilities);

  std::vector<Edge> disk_edges, memory_edges;
  for (NodeId v = 0; v < static_cast<NodeId>(disk.num_points()); ++v) {
    disk.neighbors(v, disk_edges);
    memory.neighbors(v, memory_edges);
    ASSERT_EQ(disk_edges, memory_edges) << "node " << v;
  }
  EXPECT_GT(disk.cache_misses(), 0u);
}

TEST_F(DiskGroundSetTest, ResidencyIsBoundedAndFarBelowEdgeBytes) {
  DiskGroundSetConfig config;
  config.block_edges = 256;
  config.max_cached_blocks = 4;
  const DiskGroundSet disk(graph_path_, dataset_.utilities, config);

  const std::size_t edge_bytes = disk.num_edges() * sizeof(Edge);
  const std::size_t scalars =
      disk.num_points() * (sizeof(std::int64_t) + sizeof(double));
  EXPECT_EQ(disk.resident_bytes(),
            scalars + sizeof(std::int64_t) /*offsets has n+1 entries*/ +
                config.max_cached_blocks * config.block_edges * sizeof(Edge));
  EXPECT_LT(disk.resident_bytes() - scalars, edge_bytes / 2)
      << "cache must be much smaller than the full adjacency";
}

TEST_F(DiskGroundSetTest, SequentialScanHitsCacheMostly) {
  DiskGroundSetConfig config;
  config.block_edges = 1024;
  config.max_cached_blocks = 8;
  const DiskGroundSet disk(graph_path_, dataset_.utilities, config);
  std::vector<Edge> edges;
  for (NodeId v = 0; v < static_cast<NodeId>(disk.num_points()); ++v) {
    disk.neighbors(v, edges);
  }
  // A streaming scan touches each block ~once; hits dominate because many
  // nodes share a block.
  EXPECT_GT(disk.cache_hits(), 4 * disk.cache_misses());
}

TEST_F(DiskGroundSetTest, BoundingMatchesInMemoryDecisions) {
  const DiskGroundSet disk(graph_path_, dataset_.utilities);
  const InMemoryGroundSet memory(dataset_.graph, dataset_.utilities);

  core::BoundingConfig config;
  config.objective = core::ObjectiveParams::from_alpha(0.9);
  config.sampling = core::BoundingSampling::kUniform;
  config.sample_fraction = 0.3;

  const auto from_disk = core::bound(disk, 80, config);
  const auto from_memory = core::bound(memory, 80, config);
  EXPECT_EQ(from_disk.state.selected_ids(), from_memory.state.selected_ids());
  EXPECT_EQ(from_disk.state.unassigned_ids(), from_memory.state.unassigned_ids());
  EXPECT_EQ(from_disk.grow_rounds, from_memory.grow_rounds);
}

TEST_F(DiskGroundSetTest, DistributedGreedyMatchesInMemorySelection) {
  const DiskGroundSet disk(graph_path_, dataset_.utilities);
  const InMemoryGroundSet memory(dataset_.graph, dataset_.utilities);

  core::DistributedGreedyConfig config;
  config.objective = core::ObjectiveParams::from_alpha(0.9);
  config.num_machines = 8;
  config.num_rounds = 3;
  const auto from_disk = core::distributed_greedy(disk, 80, config);
  const auto from_memory = core::distributed_greedy(memory, 80, config);
  EXPECT_EQ(from_disk.selected, from_memory.selected);
  EXPECT_EQ(from_disk.objective, from_memory.objective);
}

TEST_F(DiskGroundSetTest, ShardedConfigurationsAllAgree) {
  const InMemoryGroundSet memory(dataset_.graph, dataset_.utilities);
  for (const std::size_t shards : {1ul, 2ul, 7ul, 64ul}) {
    DiskGroundSetConfig config;
    config.block_edges = 64;
    config.max_cached_blocks = 8;
    config.num_shards = shards;
    const DiskGroundSet disk(graph_path_, dataset_.utilities, config);
    // More shards than blocks collapse to one block per shard; the budget
    // never grows past max_cached_blocks.
    EXPECT_LE(disk.num_shards(), config.max_cached_blocks);
    std::vector<Edge> disk_edges, memory_edges;
    for (NodeId v = 0; v < static_cast<NodeId>(disk.num_points()); ++v) {
      disk.neighbors(v, disk_edges);
      memory.neighbors(v, memory_edges);
      ASSERT_EQ(disk_edges, memory_edges) << "shards " << shards << " node " << v;
    }
    EXPECT_LE(disk.stats().resident_blocks_high_water, config.max_cached_blocks);
  }
}

TEST_F(DiskGroundSetTest, NeighborsSpanIsZeroCopyWithinABlockAndExact) {
  const DiskGroundSet disk(graph_path_, dataset_.utilities);
  const InMemoryGroundSet memory(dataset_.graph, dataset_.utilities);
  std::vector<Edge> scratch, expected;
  std::size_t copies = 0;
  for (NodeId v = 0; v < static_cast<NodeId>(disk.num_points()); ++v) {
    scratch.clear();
    const auto span = disk.neighbors_span(v, scratch);
    memory.neighbors(v, expected);
    ASSERT_EQ(std::vector<Edge>(span.begin(), span.end()), expected)
        << "node " << v;
    if (!scratch.empty()) ++copies;
  }
  // Only neighborhoods that straddle a 4096-edge block boundary may pay the
  // scratch copy — at most one node per boundary; everything else must be
  // served zero-copy out of the pinned block.
  const std::size_t boundaries = disk.num_edges() / 4096;
  EXPECT_LE(copies, boundaries);
}

TEST_F(DiskGroundSetTest, ManySimultaneousScratchesAllStayValid) {
  // More simultaneously-live scratch buffers than the thread has pin slots:
  // the engine must fall back to copying rather than ever invalidating an
  // earlier span (the GroundSet contract: a span dies only when ITS scratch
  // is reused). Take 12 spans with 12 distinct scratches, hold them all,
  // then validate every one.
  const DiskGroundSet disk(graph_path_, dataset_.utilities);
  const InMemoryGroundSet memory(dataset_.graph, dataset_.utilities);

  constexpr std::size_t kSpans = 12;
  std::vector<std::vector<Edge>> scratches(kSpans);
  std::vector<std::span<const Edge>> spans(kSpans);
  for (std::size_t i = 0; i < kSpans; ++i) {
    spans[i] = disk.neighbors_span(static_cast<NodeId>(i * 7), scratches[i]);
  }
  std::vector<Edge> expected;
  for (std::size_t i = 0; i < kSpans; ++i) {
    memory.neighbors(static_cast<NodeId>(i * 7), expected);
    ASSERT_EQ(std::vector<Edge>(spans[i].begin(), spans[i].end()), expected)
        << "span " << i << " was invalidated by a later different-scratch read";
  }
}

TEST_F(DiskGroundSetTest, PrefetchPagesBlocksInAndEliminatesDemandMisses) {
  DiskGroundSetConfig config;
  config.block_edges = 256;
  config.max_cached_blocks = 128;  // covers the whole toy adjacency
  config.num_shards = 8;
  const DiskGroundSet disk(graph_path_, dataset_.utilities, config);

  std::vector<NodeId> all(disk.num_points());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = static_cast<NodeId>(i);

  // Synchronous prefetch (no pool): afterwards a full scan must not miss.
  disk.prefetch(std::span<const NodeId>(all), nullptr);
  DiskCacheStats stats = disk.stats();
  EXPECT_GT(stats.prefetch_issued, 0u);
  EXPECT_EQ(stats.prefetch_loaded, stats.prefetch_issued);
  EXPECT_EQ(stats.misses, 0u);

  std::vector<Edge> edges;
  for (NodeId v = 0; v < static_cast<NodeId>(disk.num_points()); ++v) {
    disk.neighbors(v, edges);
  }
  stats = disk.stats();
  EXPECT_EQ(stats.misses, 0u) << "scan after full prefetch must be all hits";

  // Asynchronous prefetch on a pool must agree and be drainable.
  const DiskGroundSet async_disk(graph_path_, dataset_.utilities, config);
  ThreadPool pool(4);
  async_disk.prefetch(std::span<const NodeId>(all), &pool);
  async_disk.drain_prefetch();
  EXPECT_EQ(async_disk.stats().prefetch_loaded,
            async_disk.stats().prefetch_issued);
  for (NodeId v = 0; v < static_cast<NodeId>(async_disk.num_points()); ++v) {
    async_disk.neighbors(v, edges);
  }
  EXPECT_EQ(async_disk.stats().misses, 0u);
}

TEST_F(DiskGroundSetTest, PrefetchIsCappedAtTheCacheBudget) {
  DiskGroundSetConfig config;
  config.block_edges = 16;
  config.max_cached_blocks = 4;
  config.num_shards = 2;
  const DiskGroundSet disk(graph_path_, dataset_.utilities, config);
  std::vector<NodeId> all(disk.num_points());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = static_cast<NodeId>(i);
  disk.prefetch(std::span<const NodeId>(all), nullptr);
  const DiskCacheStats stats = disk.stats();
  // A plan larger than the budget must not be paged past the budget (it
  // would evict its own freshly loaded blocks).
  EXPECT_LE(stats.prefetch_issued, config.max_cached_blocks);
  EXPECT_LE(stats.resident_blocks_high_water, config.max_cached_blocks);
}

TEST_F(DiskGroundSetTest, RejectsNonGraphFile) {
  const std::string bogus = (dir_ / "bogus.bin").string();
  {
    std::ofstream out(bogus, std::ios::binary);
    out << "definitely not a graph but long enough for a header read";
  }
  // Still a runtime_error for pre-existing catch sites, with a typed kind.
  EXPECT_THROW(DiskGroundSet(bogus, dataset_.utilities), std::runtime_error);
  try {
    DiskGroundSet set(bogus, dataset_.utilities);
    FAIL() << "bogus file was accepted";
  } catch (const DiskFormatError& error) {
    EXPECT_EQ(error.kind(), DiskFormatError::Kind::kBadMagic);
  }
}

TEST_F(DiskGroundSetTest, RejectsMissingFileAndWrongUtilityCount) {
  try {
    DiskGroundSet set((dir_ / "missing.bin").string(), dataset_.utilities);
    FAIL() << "missing file was accepted";
  } catch (const DiskFormatError& error) {
    EXPECT_EQ(error.kind(), DiskFormatError::Kind::kOpen);
  }
  std::vector<double> wrong(dataset_.utilities.begin(),
                            dataset_.utilities.end() - 1);
  EXPECT_THROW(DiskGroundSet(graph_path_, wrong), std::invalid_argument);
}

TEST_F(DiskGroundSetTest, RejectsBadCacheConfig) {
  DiskGroundSetConfig config;
  config.block_edges = 0;
  EXPECT_THROW(DiskGroundSet(graph_path_, dataset_.utilities, config),
               std::invalid_argument);
  config = {};
  config.num_shards = 0;
  EXPECT_THROW(DiskGroundSet(graph_path_, dataset_.utilities, config),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Typed corruption / error-path coverage of the on-disk format.
// ---------------------------------------------------------------------------

class DiskFormatErrorTest : public DiskGroundSetTest {
 protected:
  DiskFormatError::Kind open_kind(const std::string& path) {
    try {
      DiskGroundSet set(path, dataset_.utilities);
    } catch (const DiskFormatError& error) {
      return error.kind();
    } catch (const std::exception& e) {
      ADD_FAILURE() << "expected DiskFormatError, got: " << e.what();
    }
    ADD_FAILURE() << "corrupt file " << path << " was accepted";
    return DiskFormatError::Kind::kOpen;
  }

  /// Copies the valid graph file, truncated to `size` bytes.
  std::string truncated_copy(std::uintmax_t size, const char* name) {
    const std::string path = (dir_ / name).string();
    std::filesystem::copy_file(graph_path_, path);
    std::filesystem::resize_file(path, size);
    return path;
  }

  /// Copies the valid graph file and overwrites bytes at `offset`.
  std::string patched_copy(std::uint64_t offset, const void* bytes,
                           std::size_t count, const char* name) {
    const std::string path = (dir_ / name).string();
    std::filesystem::copy_file(graph_path_, path);
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(static_cast<std::streamoff>(offset));
    file.write(static_cast<const char*>(bytes),
               static_cast<std::streamsize>(count));
    return path;
  }
};

TEST_F(DiskFormatErrorTest, TruncationAtEveryRegionIsTyped) {
  const auto full = std::filesystem::file_size(graph_path_);
  // Inside the header, inside the offsets array, and inside the edge
  // payload: all must be kTruncated, detected at open (not at first read).
  EXPECT_EQ(open_kind(truncated_copy(6, "header.bin")),
            DiskFormatError::Kind::kTruncated);
  const std::uint64_t offsets_bytes =
      (dataset_.size() + 1) * sizeof(std::int64_t);
  EXPECT_EQ(open_kind(truncated_copy(20 + offsets_bytes / 2, "offsets.bin")),
            DiskFormatError::Kind::kTruncated);
  EXPECT_EQ(open_kind(truncated_copy(full - sizeof(Edge) / 2, "edges.bin")),
            DiskFormatError::Kind::kTruncated);
}

TEST_F(DiskFormatErrorTest, BadMagicAndBadVersionAreDistinguished) {
  const std::uint64_t wrong_magic = 0x4241444d41474943ULL;
  EXPECT_EQ(open_kind(patched_copy(0, &wrong_magic, sizeof(wrong_magic),
                                   "magic.bin")),
            DiskFormatError::Kind::kBadMagic);
  const std::uint32_t wrong_version = 99;
  EXPECT_EQ(open_kind(patched_copy(8, &wrong_version, sizeof(wrong_version),
                                   "version.bin")),
            DiskFormatError::Kind::kBadVersion);
}

TEST_F(DiskFormatErrorTest, OutOfRangeAndNonMonotoneOffsetsAreTyped) {
  // offsets[0] lives right after magic(8) + version(4) + length(8) = 20.
  const std::int64_t negative = -8;
  EXPECT_EQ(open_kind(patched_copy(20, &negative, sizeof(negative),
                                   "negative.bin")),
            DiskFormatError::Kind::kCorruptOffsets);
  // A huge last offset indexes edge blocks past the payload.
  const std::int64_t huge = 1'000'000'000;
  const std::uint64_t last_offset_pos =
      20 + dataset_.size() * sizeof(std::int64_t);
  EXPECT_EQ(open_kind(patched_copy(last_offset_pos, &huge, sizeof(huge),
                                   "out_of_range.bin")),
            DiskFormatError::Kind::kCorruptOffsets);
  // Non-monotone interior offsets would produce negative degrees.
  const std::int64_t backwards[] = {50, 10};
  EXPECT_EQ(open_kind(patched_copy(20 + 8, backwards, sizeof(backwards),
                                   "nonmonotone.bin")),
            DiskFormatError::Kind::kCorruptOffsets);
}

TEST_F(DiskFormatErrorTest, FileShrinkingUnderALiveReaderIsShortRead) {
  // A file that validates at open but is truncated afterwards (another
  // process, a failing disk) must fail the read loudly — never serve
  // garbage. The tiny cache guarantees the late nodes aren't resident yet.
  const std::string path = (dir_ / "shrinking.bin").string();
  std::filesystem::copy_file(graph_path_, path);
  DiskGroundSetConfig config;
  config.block_edges = 64;
  config.max_cached_blocks = 1;
  const DiskGroundSet disk(path, dataset_.utilities, config);
  std::filesystem::resize_file(path, std::filesystem::file_size(path) / 2);

  std::vector<Edge> edges;
  try {
    const auto n = static_cast<NodeId>(disk.num_points());
    for (NodeId v = n - 1; v >= 0; --v) disk.neighbors(v, edges);
    FAIL() << "reads from a shrunken file did not throw";
  } catch (const DiskFormatError& error) {
    EXPECT_EQ(error.kind(), DiskFormatError::Kind::kShortRead);
  }
}

TEST_F(DiskFormatErrorTest, EmptyFileIsTruncatedNotUB) {
  const std::string path = (dir_ / "empty.bin").string();
  { std::ofstream out(path, std::ios::binary); }
  EXPECT_EQ(open_kind(path), DiskFormatError::Kind::kTruncated);
}

}  // namespace
}  // namespace subsel::graph
