// Randomized differential suite: every registered solver crossed with every
// registered objective must produce IDENTICAL selections and objective
// values on a DiskGroundSet and on the materialized InMemoryGroundSet over
// the same seeded random graphs — including under tiny cache budgets (every
// read evicts) and the single-block pathological configuration (one shard,
// one resident block). The disk engine is a pure serving layer; any
// divergence is a bug in it, never acceptable drift.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "../testing/test_instances.h"
#include "api/objective_registry.h"
#include "api/solver_registry.h"
#include "graph/disk_ground_set.h"
#include "graph/reference_disk_ground_set.h"

namespace subsel::graph {
namespace {

using subsel::testing::Instance;
using subsel::testing::random_instance;

struct CacheCase {
  const char* name;
  DiskGroundSetConfig config;
};

/// Default, forced-eviction, and single-block cache geometries: the paging
/// behavior must never leak into results.
const CacheCase kCacheCases[] = {
    {"default", {}},
    // Tiny blocks + tiny budget: nearly every neighborhood read crosses
    // blocks and evicts; striped across a handful of shards.
    {"tiny-forced-eviction", {/*block_edges=*/16, /*max_cached_blocks=*/4,
                              /*num_shards=*/2}},
    // The pathological floor: one shard, one mutex, one resident block.
    {"single-block", {/*block_edges=*/64, /*max_cached_blocks=*/1,
                      /*num_shards=*/1}},
};

class DiskMemoryEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "subsel_disk_equiv_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

/// Builds the request every cell of the matrix runs; mirrors the objective
/// matrix in bench/micro_core.cpp (bounding is disabled for solvers whose
/// bounding stage the objective cannot support, so every supportable cell
/// actually runs).
api::SelectionRequest base_request(const GroundSet& ground_set,
                                   const std::string& solver,
                                   const std::string& objective) {
  api::SelectionRequest request;
  request.ground_set = &ground_set;
  request.k = ground_set.num_points() / 10;
  request.objective_name = objective;
  request.objective = core::ObjectiveParams::from_alpha(0.9);
  request.seed = 71;
  request.solver = solver;
  request.distributed.num_machines = 4;
  request.distributed.num_rounds = 3;
  return request;
}

TEST_F(DiskMemoryEquivalenceTest, EverySolverEveryObjectiveEveryCacheGeometry) {
  const Instance instance = random_instance(320, 6, 2027);
  const auto memory_set = instance.ground_set();
  const std::string graph_path = (dir_ / "equiv.graph").string();
  instance.graph.save(graph_path);

  const auto solvers = api::SolverRegistry::instance().list();
  const auto objectives = api::ObjectiveRegistry::instance().list();
  ASSERT_GE(solvers.size(), 10u);
  ASSERT_GE(objectives.size(), 3u);

  std::size_t cells_run = 0;
  for (const CacheCase& cache_case : kCacheCases) {
    const DiskGroundSet disk_set(graph_path, instance.utilities,
                                 cache_case.config);
    for (const auto& objective : objectives) {
      for (const auto& solver : solvers) {
        api::SelectionRequest request =
            base_request(memory_set, solver.name, objective.name);
        if (solver.caps.bounding_stage && !objective.caps.utility_bounds) {
          request.bounding.enabled = false;
        }
        if (!api::incompatibility_reason(solver.caps, objective.caps,
                                         request.bounding.enabled)
                 .empty()) {
          continue;  // validated rejection, covered by the registry tests
        }
        SCOPED_TRACE(std::string(cache_case.name) + " / " + solver.name +
                     " / " + objective.name);

        const api::SelectionReport from_memory = api::select(request);
        request.ground_set = &disk_set;
        const api::SelectionReport from_disk = api::select(request);

        EXPECT_EQ(from_disk.selected, from_memory.selected);
        EXPECT_EQ(from_disk.objective, from_memory.objective);
        EXPECT_EQ(from_disk.solver_objective, from_memory.solver_objective);
        // The out-of-core run must say so in its report; the in-memory run
        // must not.
        EXPECT_TRUE(from_disk.disk_cache.has_value());
        EXPECT_FALSE(from_memory.disk_cache.has_value());
        ++cells_run;
      }
    }
    // The constrained geometries must actually have paged: every block
    // fetch beyond the budget is an eviction.
    const DiskCacheStats stats = disk_set.stats();
    EXPECT_GT(stats.misses + stats.prefetch_loaded, 0u);
    EXPECT_LE(stats.resident_blocks_high_water,
              cache_case.config.max_cached_blocks);
  }
  // 3 cache geometries x (most of) solvers x objectives; keep an absolute
  // floor so a silently-shrinking registry fails loudly.
  EXPECT_GE(cells_run, 3u * 25u);
}

TEST_F(DiskMemoryEquivalenceTest, MultipleSeededGraphsUnderForcedEviction) {
  for (const std::uint64_t seed : {501ull, 502ull, 503ull}) {
    const Instance instance = random_instance(240, 5, seed);
    const auto memory_set = instance.ground_set();
    const std::string graph_path =
        (dir_ / ("graph_" + std::to_string(seed))).string();
    instance.graph.save(graph_path);

    DiskGroundSetConfig cache;
    cache.block_edges = 32;
    cache.max_cached_blocks = 3;
    cache.num_shards = 3;
    const DiskGroundSet disk_set(graph_path, instance.utilities, cache);

    // The paper's deployed composition: bounding + multi-round greedy.
    api::SelectionRequest request =
        base_request(memory_set, "pipeline", "pairwise");
    request.seed = seed;
    const api::SelectionReport from_memory = api::select(request);
    request.ground_set = &disk_set;
    const api::SelectionReport from_disk = api::select(request);

    EXPECT_EQ(from_disk.selected, from_memory.selected) << "seed " << seed;
    EXPECT_EQ(from_disk.objective, from_memory.objective) << "seed " << seed;
    EXPECT_GT(disk_set.stats().misses, 0u);
  }
}

TEST_F(DiskMemoryEquivalenceTest, ShardedEngineMatchesSeedReferenceEngine) {
  // The sharded engine vs the seed single-mutex engine, edge for edge:
  // graph::reference::MutexDiskGroundSet is the kept-verbatim oracle.
  const Instance instance = random_instance(300, 6, 904);
  const std::string graph_path = (dir_ / "reference.graph").string();
  instance.graph.save(graph_path);

  DiskGroundSetConfig cache;
  cache.block_edges = 128;
  cache.max_cached_blocks = 6;
  cache.num_shards = 4;
  const DiskGroundSet sharded(graph_path, instance.utilities, cache);
  reference::MutexDiskGroundSetConfig legacy_cache;
  legacy_cache.block_edges = 128;
  legacy_cache.max_cached_blocks = 6;
  const reference::MutexDiskGroundSet legacy(graph_path, instance.utilities,
                                             legacy_cache);

  ASSERT_EQ(sharded.num_points(), legacy.num_points());
  std::vector<Edge> sharded_edges, legacy_edges, scratch;
  for (NodeId v = 0; v < static_cast<NodeId>(sharded.num_points()); ++v) {
    sharded.neighbors(v, sharded_edges);
    legacy.neighbors(v, legacy_edges);
    ASSERT_EQ(sharded_edges, legacy_edges) << "node " << v;
    // The zero-copy span must agree with the copying path.
    const auto span = sharded.neighbors_span(v, scratch);
    ASSERT_EQ(std::vector<Edge>(span.begin(), span.end()), legacy_edges)
        << "node " << v;
  }
}

}  // namespace
}  // namespace subsel::graph
