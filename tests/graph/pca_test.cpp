#include "graph/pca.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace subsel::graph {
namespace {

TEST(Pca, RecoversDominantAxis) {
  // Data varies strongly along dim 0, weakly along dim 1, not at all
  // elsewhere; PC1 scores must correlate with the dim-0 coordinate.
  subsel::Rng rng(1);
  EmbeddingMatrix m(500, 8);
  std::vector<double> axis0(500);
  for (std::size_t i = 0; i < 500; ++i) {
    axis0[i] = rng.normal() * 10.0;
    m.row(i)[0] = static_cast<float>(axis0[i]);
    m.row(i)[1] = static_cast<float>(rng.normal());
  }
  const auto projection = pca_project_2d(m);
  double dot_product = 0.0, norm_x = 0.0, norm_a = 0.0;
  for (std::size_t i = 0; i < 500; ++i) {
    dot_product += projection.x[i] * axis0[i];
    norm_x += projection.x[i] * projection.x[i];
    norm_a += axis0[i] * axis0[i];
  }
  const double correlation = std::abs(dot_product) / std::sqrt(norm_x * norm_a);
  EXPECT_GT(correlation, 0.99);
}

TEST(Pca, ComponentsAreUncorrelated) {
  subsel::Rng rng(2);
  EmbeddingMatrix m(400, 6);
  for (std::size_t i = 0; i < 400; ++i) {
    for (float& v : m.row(i)) v = static_cast<float>(rng.normal());
  }
  const auto projection = pca_project_2d(m);
  double sum_xy = 0.0, sum_xx = 0.0, sum_yy = 0.0;
  for (std::size_t i = 0; i < 400; ++i) {
    sum_xy += projection.x[i] * projection.y[i];
    sum_xx += projection.x[i] * projection.x[i];
    sum_yy += projection.y[i] * projection.y[i];
  }
  EXPECT_LT(std::abs(sum_xy) / std::sqrt(sum_xx * sum_yy), 0.1);
}

TEST(Pca, DeterministicForFixedSeed) {
  subsel::Rng rng(3);
  EmbeddingMatrix m(100, 4);
  for (std::size_t i = 0; i < 100; ++i) {
    for (float& v : m.row(i)) v = static_cast<float>(rng.normal());
  }
  const auto a = pca_project_2d(m, 30, 7);
  const auto b = pca_project_2d(m, 30, 7);
  EXPECT_EQ(a.x, b.x);
  EXPECT_EQ(a.y, b.y);
}

TEST(Pca, HandlesEmptyMatrix) {
  EmbeddingMatrix m;
  const auto projection = pca_project_2d(m);
  EXPECT_TRUE(projection.x.empty());
  EXPECT_TRUE(projection.y.empty());
}

}  // namespace
}  // namespace subsel::graph
