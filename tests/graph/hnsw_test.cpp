// HNSW index: recall against brute force, determinism, hierarchy sanity,
// degenerate inputs, and downstream equivalence — the selection pipeline
// must produce near-identical quality on an HNSW-built graph as on the IVF
// or exact graph (the ANN backend is an implementation detail).
#include "graph/hnsw.h"

#include <gtest/gtest.h>

#include <set>

#include "core/greedy.h"
#include "data/synthetic.h"
#include "graph/knn.h"

namespace subsel::graph {
namespace {

EmbeddingMatrix clustered(std::size_t n, std::size_t classes, std::uint64_t seed) {
  data::ClusteredEmbeddingConfig config;
  config.num_points = n;
  config.num_classes = classes;
  config.dim = 32;
  config.seed = seed;
  return data::generate_clustered_embeddings(config).points;
}

double recall_vs_brute_force(const EmbeddingMatrix& embeddings,
                             const HnswIndex& index, std::size_t k) {
  KnnConfig knn;
  knn.num_neighbors = k;
  const auto exact = brute_force_knn(embeddings, knn);
  std::size_t hits = 0, total = 0;
  for (std::size_t i = 0; i < embeddings.rows(); ++i) {
    const auto approx = index.search(embeddings.row(i), k, static_cast<NodeId>(i));
    std::set<NodeId> truth;
    for (const Edge& e : exact[i].edges) truth.insert(e.neighbor);
    for (const Edge& e : approx) hits += truth.count(e.neighbor);
    total += truth.size();
  }
  return static_cast<double>(hits) / static_cast<double>(total);
}

TEST(Hnsw, HighRecallOnClusteredEmbeddings) {
  const auto embeddings = clustered(2000, 20, 61);
  const HnswIndex index(embeddings, HnswConfig{});
  EXPECT_GT(recall_vs_brute_force(embeddings, index, 10), 0.85);
}

TEST(Hnsw, WiderBeamRaisesRecall) {
  const auto embeddings = clustered(1500, 15, 62);
  HnswConfig narrow;
  narrow.ef_search = 16;
  HnswConfig wide;
  wide.ef_search = 128;
  const HnswIndex narrow_index(embeddings, narrow);
  const HnswIndex wide_index(embeddings, wide);
  EXPECT_GE(recall_vs_brute_force(embeddings, wide_index, 10) + 0.02,
            recall_vs_brute_force(embeddings, narrow_index, 10));
}

TEST(Hnsw, DeterministicGivenSeed) {
  const auto embeddings = clustered(600, 8, 63);
  const HnswIndex a(embeddings, HnswConfig{});
  const HnswIndex b(embeddings, HnswConfig{});
  for (std::size_t i = 0; i < embeddings.rows(); i += 37) {
    EXPECT_EQ(a.search(embeddings.row(i), 10, static_cast<NodeId>(i)),
              b.search(embeddings.row(i), 10, static_cast<NodeId>(i)))
        << "query " << i;
  }
}

TEST(Hnsw, SearchExcludesSelfAndRespectsK) {
  const auto embeddings = clustered(500, 5, 64);
  const HnswIndex index(embeddings, HnswConfig{});
  for (std::size_t i = 0; i < 50; ++i) {
    const auto result = index.search(embeddings.row(i), 7, static_cast<NodeId>(i));
    EXPECT_EQ(result.size(), 7u);
    for (const Edge& e : result) EXPECT_NE(e.neighbor, static_cast<NodeId>(i));
    for (std::size_t j = 1; j < result.size(); ++j) {
      EXPECT_GE(result[j - 1].weight, result[j].weight) << "unsorted at " << j;
    }
  }
}

TEST(Hnsw, HierarchyHasMultipleLevels) {
  const auto embeddings = clustered(3000, 10, 65);
  const HnswIndex index(embeddings, HnswConfig{});
  EXPECT_GE(index.max_level(), 1u);  // 3000 nodes, E[height] = log_m(n) > 1
}

TEST(Hnsw, TinyAndEmptyInputs) {
  EmbeddingMatrix empty(0, 8);
  const HnswIndex empty_index(empty, HnswConfig{});
  EXPECT_EQ(empty_index.size(), 0u);
  std::vector<float> query(8, 0.0f);
  EXPECT_TRUE(empty_index.search(query, 5, -1).empty());

  const auto two = clustered(2, 1, 66);
  const HnswIndex tiny(two, HnswConfig{});
  const auto result = tiny.search(two.row(0), 5, 0);
  EXPECT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].neighbor, 1);
}

TEST(Hnsw, KnnGraphFeedsSelectionWithQualityParity) {
  // Build the 10-NN graph with HNSW and with brute force; centralized greedy
  // quality on the two symmetrized graphs must agree within a few percent.
  const auto embeddings = clustered(1200, 12, 67);
  KnnConfig knn;
  knn.num_neighbors = 10;
  const auto exact_graph =
      SimilarityGraph::from_lists(brute_force_knn(embeddings, knn)).symmetrized();
  const HnswIndex index(embeddings, HnswConfig{});
  const auto hnsw_graph =
      SimilarityGraph::from_lists(index.knn_graph(10)).symmetrized();

  std::vector<double> utilities(embeddings.rows());
  for (std::size_t i = 0; i < utilities.size(); ++i) {
    utilities[i] = 0.5 + 0.5 * static_cast<double>(i % 97) / 97.0;
  }
  const auto params = core::ObjectiveParams::from_alpha(0.9);
  const double exact_objective =
      core::centralized_greedy(exact_graph, utilities, params, 120).objective;
  const double hnsw_objective =
      core::centralized_greedy(hnsw_graph, utilities, params, 120).objective;
  EXPECT_NEAR(hnsw_objective / exact_objective, 1.0, 0.03);
}

}  // namespace
}  // namespace subsel::graph
