// Minimal randomized property harness for the conformance suites.
//
// A property is a callable `std::optional<std::string>(std::uint64_t seed,
// double scale)`: it builds a random instance from `seed` (sizes multiplied
// by `scale`), checks an invariant, and returns std::nullopt on success or a
// failure message. check_property() sweeps >= num_seeds deterministic seeds
// at scale 1.0; on the first failure it SHRINKS by replaying the same seed
// at progressively smaller scales and reports the smallest scale that still
// fails, so the counterexample instance is as small as the property allows.
// The failure message always carries the exact seed + scale one-liner needed
// to replay the counterexample in a debugger.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>

namespace subsel::testing {

/// Scales an instance dimension, never below `floor` (shrunk instances must
/// stay structurally valid: at least a couple of points, k >= 1, ...).
inline std::size_t scaled(std::size_t size, double scale, std::size_t floor = 1) {
  const auto shrunk = static_cast<std::size_t>(static_cast<double>(size) * scale);
  return std::max(floor, shrunk);
}

/// Runs `property` for seeds base_seed .. base_seed + num_seeds - 1 at full
/// scale, shrinking the first counterexample. Reports through GTest.
template <typename Property>
void check_property(const char* name, std::size_t num_seeds, Property&& property,
                    std::uint64_t base_seed = 0x5eedULL) {
  for (std::size_t i = 0; i < num_seeds; ++i) {
    const std::uint64_t seed = base_seed + i;
    std::optional<std::string> failure = property(seed, 1.0);
    if (!failure.has_value()) continue;

    // Shrink: smallest scale (of a fixed ladder) where the same seed still
    // fails. Re-running is cheap at tiny scales, and a deterministic ladder
    // keeps the minimized repro stable across machines.
    double failing_scale = 1.0;
    for (const double scale : {0.1, 0.2, 0.35, 0.5, 0.75}) {
      std::optional<std::string> shrunk = property(seed, scale);
      if (shrunk.has_value()) {
        failing_scale = scale;
        failure = std::move(shrunk);
        break;
      }
    }
    ADD_FAILURE() << "property \"" << name << "\" failed (seed " << seed
                  << ", scale " << failing_scale << "):\n  " << *failure
                  << "\n  repro: property(" << seed << ", " << failing_scale
                  << ")";
    return;  // first counterexample only; the rest would likely be noise
  }
}

}  // namespace subsel::testing
