// Shared helpers for randomized algorithm tests: small synthetic instances
// and a brute-force optimum for validating approximation guarantees.
#pragma once

#include <algorithm>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "core/objective.h"
#include "graph/ground_set.h"
#include "graph/similarity_graph.h"

namespace subsel::testing {

struct Instance {
  graph::SimilarityGraph graph;
  std::vector<double> utilities;

  graph::InMemoryGroundSet ground_set() const {
    return graph::InMemoryGroundSet(graph, utilities);
  }
};

/// Random symmetric graph: each node gets ~`degree` random neighbors with
/// weights in (0, max_weight]; utilities in (0, max_utility].
inline Instance random_instance(std::size_t n, std::size_t degree, std::uint64_t seed,
                                double max_weight = 1.0, double max_utility = 2.0) {
  Rng rng(seed);
  std::vector<graph::NeighborList> lists(n);
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t e = 0; e < degree; ++e) {
      const auto other = static_cast<graph::NodeId>(rng.uniform_index(n));
      if (other == static_cast<graph::NodeId>(v)) continue;
      const bool exists =
          std::any_of(lists[v].edges.begin(), lists[v].edges.end(),
                      [other](const graph::Edge& edge) { return edge.neighbor == other; });
      if (exists) continue;
      lists[v].edges.push_back(
          graph::Edge{other, static_cast<float>(rng.uniform(0.01, max_weight))});
    }
  }
  Instance instance;
  instance.graph = graph::SimilarityGraph::from_lists(lists).symmetrized();
  instance.utilities.resize(n);
  for (double& u : instance.utilities) u = rng.uniform(0.01, max_utility);
  return instance;
}

/// Exhaustive optimum over all subsets of size k (use only for tiny n).
inline double brute_force_optimum(const graph::GroundSet& ground_set,
                                  core::ObjectiveParams params, std::size_t k,
                                  std::vector<graph::NodeId>* best_subset = nullptr) {
  const std::size_t n = ground_set.num_points();
  std::vector<graph::NodeId> subset(k);
  std::vector<bool> chooser(n, false);
  std::fill(chooser.begin(), chooser.begin() + static_cast<std::ptrdiff_t>(k), true);
  core::PairwiseObjective objective(ground_set, params);

  double best = -std::numeric_limits<double>::infinity();
  do {
    std::size_t index = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (chooser[i]) subset[index++] = static_cast<graph::NodeId>(i);
    }
    const double value = objective.evaluate(subset);
    if (value > best) {
      best = value;
      if (best_subset != nullptr) *best_subset = subset;
    }
  } while (std::prev_permutation(chooser.begin(), chooser.end()));
  return best;
}

}  // namespace subsel::testing
