// Brute-force conformance oracle for constrained selection: enumerate every
// subset of size <= k, keep the ones feasible under a core::ConstraintSet,
// and maximize an arbitrary set function over them. Deliberately shares the
// production feasibility predicates (ConstraintSet::feasible_subset, which
// itself goes through fits_cost) so float-sum ordering can never make the
// oracle and a solver disagree about whether a particular subset fits —
// the oracle's only independent machinery is the exhaustive enumeration.
//
// Exponential: use for n <= ~16 only.
#pragma once

#include <cstdint>
#include <limits>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/constraints.h"

namespace subsel::testing {

struct OracleResult {
  /// Best feasible subset found (ascending ids); empty when even the empty
  /// set is the best (or only) feasible choice.
  std::vector<core::NodeId> best;
  double objective = 0.0;
  /// Number of feasible subsets of size in [1, k] — 0 means every non-empty
  /// selection is infeasible and solvers must return empty.
  std::size_t feasible_count = 0;
};

/// Exhaustive constrained maximizer. `evaluate` is any set function over
/// ascending id spans (typically a PairwiseObjective or kernel evaluate).
template <typename Evaluate>
OracleResult constrained_brute_force(std::size_t n, std::size_t k,
                                     const core::ConstraintSet& constraints,
                                     Evaluate&& evaluate) {
  OracleResult result;
  result.objective = 0.0;  // the empty set is always feasible, f({}) == 0
  std::vector<core::NodeId> subset;
  const std::uint64_t limit = std::uint64_t{1} << n;
  for (std::uint64_t mask = 1; mask < limit; ++mask) {
    if (static_cast<std::size_t>(__builtin_popcountll(mask)) > k) continue;
    subset.clear();
    for (std::size_t v = 0; v < n; ++v) {
      if ((mask >> v) & 1u) subset.push_back(static_cast<core::NodeId>(v));
    }
    if (!constraints.feasible_subset(subset)) continue;
    ++result.feasible_count;
    const double value = evaluate(std::span<const core::NodeId>(subset));
    if (value > result.objective) {
      result.objective = value;
      result.best = subset;
    }
  }
  return result;
}

/// Human-readable feasibility audit of a solver's selection: empty string
/// when `selected` satisfies every active family plus |S| <= k and holds no
/// duplicates; otherwise a message naming the violated invariant. This is
/// the check every conformance property runs on every solver output.
inline std::string feasibility_violation(std::span<const core::NodeId> selected,
                                         const core::ConstraintSet& constraints,
                                         std::size_t k) {
  if (selected.size() > k) {
    return "selection has " + std::to_string(selected.size()) +
           " elements, cardinality budget is " + std::to_string(k);
  }
  for (std::size_t i = 1; i < selected.size(); ++i) {
    if (selected[i] == selected[i - 1]) {
      return "duplicate id " + std::to_string(selected[i]);
    }
  }
  if (!constraints.feasible_subset(selected)) {
    return "selection violates the constraint set (cost " +
           std::to_string(constraints.cost_of(selected)) + " vs budget " +
           std::to_string(constraints.cost_budget) + ", or a group cap, or a"
           " blocked id)";
  }
  return "";
}

/// Random constraint generator for the property suites: draws some
/// combination of knapsack / partition matroid / blocked families, biased so
/// the budgets usually bind but rarely exclude everything (the budget always
/// covers the cheapest element and blocking never covers the whole ground
/// set). Already validated against `n`.
inline core::ConstraintSet random_constraints(std::size_t n, Rng& rng) {
  core::ConstraintSet constraints;
  const std::uint64_t families = 1 + rng.uniform_index(7);  // non-empty mix
  if (families & 1u) {  // knapsack
    constraints.costs.resize(n);
    for (double& c : constraints.costs) c = rng.uniform(0.1, 1.0);
    // Budget between the cheapest element and ~half the total, so some but
    // not everything fits.
    double total = 0.0, cheapest = std::numeric_limits<double>::infinity();
    for (const double c : constraints.costs) {
      total += c;
      cheapest = std::min(cheapest, c);
    }
    constraints.cost_budget = cheapest + rng.uniform(0.0, 0.5 * total);
  }
  if (families & 2u) {  // partition matroid
    const std::size_t num_groups = 1 + rng.uniform_index(std::max<std::size_t>(1, n / 2));
    constraints.groups.resize(n);
    for (auto& g : constraints.groups) {
      g = static_cast<std::uint32_t>(rng.uniform_index(num_groups));
    }
    constraints.group_caps.assign(num_groups, 0);
    for (auto& cap : constraints.group_caps) cap = 1 + rng.uniform_index(3);
  }
  if (families & 4u) {  // blocked ids (never all of them)
    const std::size_t count = rng.uniform_index(std::max<std::size_t>(2, n / 3));
    for (std::size_t i = 0; i < count; ++i) {
      constraints.blocked.push_back(static_cast<core::NodeId>(rng.uniform_index(n)));
    }
  }
  constraints.validate(n);
  return constraints;
}

}  // namespace subsel::testing
