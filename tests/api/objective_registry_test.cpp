// Objective-registry metadata and the kernel conformance suite: every
// registered objective, instantiated through the registry, must be
// submodular (diminishing returns vs brute force on small instances),
// monotone after its gain offset, and self-consistent
// (evaluate/marginal_gain/singleton agree); every compatible solver must run
// it end-to-end through the one SelectionRequest/SelectionReport schema, and
// every incompatible combination must fail at validation.
#include "api/objective_registry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "../testing/test_instances.h"
#include "api/solver_registry.h"
#include "common/rng.h"

namespace subsel::api {
namespace {

using subsel::testing::Instance;
using subsel::testing::random_instance;

std::vector<std::string> registered_objectives() {
  std::vector<std::string> names;
  for (const auto& info : ObjectiveRegistry::instance().list()) {
    names.push_back(info.name);
  }
  return names;
}

TEST(ObjectiveRegistry, RegistersTheBuiltinObjectives) {
  const auto infos = ObjectiveRegistry::instance().list();
  EXPECT_GE(infos.size(), 3u);
  for (const auto& info : infos) {
    EXPECT_FALSE(info.name.empty());
    EXPECT_FALSE(info.description.empty()) << info.name;
    EXPECT_FALSE(info.formula.empty()) << info.name;
    EXPECT_TRUE(ObjectiveRegistry::instance().contains(info.name));
    EXPECT_NE(ObjectiveRegistry::instance().info(info.name), nullptr);
  }
  for (const char* name : {"pairwise", "facility-location", "saturated-coverage"}) {
    EXPECT_TRUE(ObjectiveRegistry::instance().contains(name)) << name;
  }
}

TEST(ObjectiveRegistry, UnknownObjectiveThrowsWithKnownNames) {
  const Instance instance = random_instance(40, 4, 8101);
  const auto ground_set = instance.ground_set();
  SelectionRequest request;
  request.ground_set = &ground_set;
  request.k = 4;
  request.objective_name = "does-not-exist";
  try {
    select(request);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("pairwise"), std::string::npos);
  }
}

TEST(ObjectiveRegistry, RejectsMalformedPairwiseParams) {
  const Instance instance = random_instance(40, 4, 8102);
  const auto ground_set = instance.ground_set();
  SelectionRequest request;
  request.ground_set = &ground_set;
  request.k = 4;
  request.solver = "lazy-greedy";
  request.objective.alpha = 0.0;  // pair_scale() would divide by zero
  EXPECT_THROW(select(request), std::invalid_argument);
  request.objective.alpha = 0.9;
  request.objective.beta = -1.0;
  EXPECT_THROW(select(request), std::invalid_argument);
}

TEST(ObjectiveRegistry, RejectsMalformedObjectiveOptions) {
  const Instance instance = random_instance(40, 4, 8103);
  const auto ground_set = instance.ground_set();
  SelectionRequest request;
  request.ground_set = &ground_set;
  request.k = 4;
  request.solver = "lazy-greedy";
  request.objective_name = "saturated-coverage";
  request.coverage.saturation = 0.0;
  EXPECT_THROW(select(request), std::invalid_argument);
  request.coverage.saturation = 1.0;
  request.objective_name = "facility-location";
  request.facility_location.self_similarity = -2.0;
  EXPECT_THROW(select(request), std::invalid_argument);
}

TEST(ObjectiveRegistry, MetadataCapsMatchKernelCaps) {
  const Instance instance = random_instance(30, 4, 8104);
  const auto ground_set = instance.ground_set();
  for (const auto& info : ObjectiveRegistry::instance().list()) {
    SelectionRequest request;
    request.ground_set = &ground_set;
    request.objective_name = info.name;
    const auto kernel = ObjectiveRegistry::instance().make(request);
    EXPECT_EQ(kernel->name(), info.name);
    const auto caps = kernel->caps();
    EXPECT_EQ(caps.linear_priority_updates, info.caps.linear_priority_updates)
        << info.name;
    EXPECT_EQ(caps.utility_bounds, info.caps.utility_bounds) << info.name;
    EXPECT_EQ(caps.distributed_scoring, info.caps.distributed_scoring)
        << info.name;
    EXPECT_EQ(caps.monotone, info.caps.monotone) << info.name;
    // Linear updates promise the fast path; the two must agree.
    EXPECT_EQ(caps.linear_priority_updates,
              kernel->pairwise_params() != nullptr)
        << info.name;
  }
}

/// Conformance suite, parameterized over every registered objective name.
class ObjectiveConformance : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<core::ObjectiveKernel> make_kernel(
      const graph::GroundSet& ground_set) {
    SelectionRequest request;
    request.ground_set = &ground_set;
    request.objective_name = GetParam();
    return ObjectiveRegistry::instance().make(request);
  }
};

TEST_P(ObjectiveConformance, EvaluateAndMarginalGainAgree) {
  const Instance instance = random_instance(60, 5, 8201);
  const auto ground_set = instance.ground_set();
  const auto kernel = make_kernel(ground_set);

  Rng rng(8202);
  std::vector<std::uint8_t> membership(60, 0);
  double value = kernel->evaluate(membership);
  EXPECT_NEAR(value, 0.0, 1e-12);  // f(empty) = 0 for every built-in kernel

  // Grow a random subset one element at a time; the marginal gain must match
  // the evaluate difference at every step, and the singleton value must be
  // the first gain from empty.
  for (std::size_t step = 0; step < 20; ++step) {
    core::NodeId v;
    do {
      v = static_cast<core::NodeId>(rng.uniform_index(60));
    } while (membership[static_cast<std::size_t>(v)] != 0);

    if (step == 0) {
      EXPECT_NEAR(kernel->marginal_gain(membership, v), kernel->singleton_value(v),
                  1e-9);
    }
    const double gain = kernel->marginal_gain(membership, v);
    membership[static_cast<std::size_t>(v)] = 1;
    const double next = kernel->evaluate(membership);
    EXPECT_NEAR(next - value, gain, 1e-9) << GetParam() << " step " << step;
    value = next;
  }
}

TEST_P(ObjectiveConformance, DiminishingReturnsOnNestedSubsets) {
  // Submodularity vs brute force: for random S ⊂ T and v ∉ T,
  // gain(v | S) >= gain(v | T).
  const Instance instance = random_instance(50, 5, 8301);
  const auto ground_set = instance.ground_set();
  const auto kernel = make_kernel(ground_set);

  Rng rng(8302);
  for (std::size_t trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> small(50, 0), large(50, 0);
    for (std::size_t i = 0; i < 50; ++i) {
      const double roll = rng.uniform();
      if (roll < 0.15) {
        small[i] = 1;
        large[i] = 1;
      } else if (roll < 0.4) {
        large[i] = 1;
      }
    }
    core::NodeId v;
    do {
      v = static_cast<core::NodeId>(rng.uniform_index(50));
    } while (large[static_cast<std::size_t>(v)] != 0);
    small[static_cast<std::size_t>(v)] = 0;

    const double gain_small = kernel->marginal_gain(small, v);
    const double gain_large = kernel->marginal_gain(large, v);
    EXPECT_GE(gain_small, gain_large - 1e-9)
        << GetParam() << " trial " << trial;
  }
}

TEST_P(ObjectiveConformance, MonotoneAfterGainOffset) {
  // Every marginal gain plus the kernel's offset must be non-negative; for
  // kernels declaring monotone, the offset must be zero and raw gains
  // already non-negative.
  const Instance instance = random_instance(50, 5, 8401);
  const auto ground_set = instance.ground_set();
  const auto kernel = make_kernel(ground_set);
  const double offset = kernel->gain_offset();
  if (kernel->caps().monotone) {
    EXPECT_EQ(offset, 0.0) << GetParam();
  }

  Rng rng(8402);
  for (std::size_t trial = 0; trial < 100; ++trial) {
    std::vector<std::uint8_t> membership(50, 0);
    for (std::size_t i = 0; i < 50; ++i) {
      membership[i] = rng.uniform() < 0.3 ? 1 : 0;
    }
    core::NodeId v;
    do {
      v = static_cast<core::NodeId>(rng.uniform_index(50));
    } while (membership[static_cast<std::size_t>(v)] != 0);
    EXPECT_GE(kernel->marginal_gain(membership, v) + offset, -1e-9)
        << GetParam() << " trial " << trial;
  }
}

TEST_P(ObjectiveConformance, EverySolverRunsOrFailsAtValidation) {
  // The solver×objective matrix, exercised end to end: compatible pairs
  // return a valid report whose exact objective matches a fresh kernel
  // evaluation; incompatible pairs throw std::invalid_argument up front.
  const Instance instance = random_instance(150, 5, 8501);
  const auto ground_set = instance.ground_set();
  const auto kernel = make_kernel(ground_set);
  const ObjectiveInfo* objective_info =
      ObjectiveRegistry::instance().info(GetParam());
  ASSERT_NE(objective_info, nullptr);

  for (const auto& solver_info : SolverRegistry::instance().list()) {
    SelectionRequest request;
    request.ground_set = &ground_set;
    request.k = 15;
    request.objective_name = GetParam();
    request.solver = solver_info.name;
    request.seed = 3;
    request.distributed.num_machines = 3;
    request.distributed.num_rounds = 2;
    request.dataflow.num_shards = 8;

    const std::string reason = incompatibility_reason(
        solver_info.caps, objective_info->caps, request.bounding.enabled);
    if (!reason.empty()) {
      EXPECT_THROW(select(request), std::invalid_argument)
          << solver_info.name << " x " << GetParam();
      // The same solver must work once the conflicting stage is disabled,
      // unless the incompatibility is unconditional.
      request.bounding.enabled = false;
      if (incompatibility_reason(solver_info.caps, objective_info->caps, false)
              .empty()) {
        EXPECT_NO_THROW(select(request)) << solver_info.name;
      } else {
        EXPECT_THROW(select(request), std::invalid_argument) << solver_info.name;
      }
      continue;
    }

    SolverContext context;
    const SelectionReport report = select(request, context);
    EXPECT_EQ(report.solver, solver_info.name);
    EXPECT_EQ(report.objective_name, GetParam());
    EXPECT_LE(report.selected.size(), 15u);
    EXPECT_FALSE(report.selected.empty()) << solver_info.name;
    EXPECT_TRUE(std::is_sorted(report.selected.begin(), report.selected.end()));
    EXPECT_EQ(std::adjacent_find(report.selected.begin(), report.selected.end()),
              report.selected.end());
    for (const NodeId id : report.selected) {
      EXPECT_GE(id, 0);
      EXPECT_LT(static_cast<std::size_t>(id), ground_set.num_points());
    }
    const double fresh =
        kernel->evaluate(std::span<const NodeId>(report.selected));
    EXPECT_NEAR(report.objective, fresh, 1e-9)
        << solver_info.name << " x " << GetParam();
    // JSON must carry the objective name.
    EXPECT_NE(report.to_json().find("\"objective_name\":\"" + GetParam() + "\""),
              std::string::npos);
  }
}

INSTANTIATE_TEST_SUITE_P(AllObjectives, ObjectiveConformance,
                         ::testing::ValuesIn(registered_objectives()),
                         [](const auto& info) {
                           std::string name = info.param;
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

}  // namespace
}  // namespace subsel::api
