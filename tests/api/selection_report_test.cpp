// SelectionReport JSON: schema marker, key presence, structural sanity, and
// round-trip-free parseability invariants (balanced nesting, quoted keys).
#include <gtest/gtest.h>

#include <string>

#include "../testing/test_instances.h"
#include "api/solver_registry.h"

namespace subsel::api {
namespace {

using subsel::testing::random_instance;

SelectionReport sample_report(const std::string& solver) {
  static const auto instance = random_instance(200, 5, 8801);
  static const auto ground_set = instance.ground_set();
  SelectionRequest request;
  request.ground_set = &ground_set;
  request.k = 20;
  request.solver = solver;
  request.distributed.num_machines = 4;
  request.distributed.num_rounds = 2;
  return select(request);
}

TEST(SelectionReportJson, ContainsTheSchemaAndAllSections) {
  const std::string json = sample_report("pipeline").to_json();
  for (const char* needle :
       {"\"schema\":\"subsel.selection_report.v1\"", "\"solver\":\"pipeline\"",
        "\"objective_params\":{\"alpha\":", "\"selected\":[", "\"timings\":[",
        "\"rounds\":[", "\"memory\":{", "\"extra\":{", "\"config\":{",
        "\"distributed\":{", "\"num_machines\":4", "\"preempted\":false",
        "\"selected_count\":20"}) {
    EXPECT_NE(json.find(needle), std::string::npos) << "missing " << needle;
  }
}

TEST(SelectionReportJson, NestingIsBalanced) {
  for (const char* solver : {"pipeline", "greedi", "sieve-streaming", "random"}) {
    const std::string json = sample_report(solver).to_json();
    int braces = 0;
    int brackets = 0;
    bool in_string = false;
    for (std::size_t i = 0; i < json.size(); ++i) {
      const char c = json[i];
      if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
      if (in_string) continue;
      braces += (c == '{') - (c == '}');
      brackets += (c == '[') - (c == ']');
      EXPECT_GE(braces, 0);
      EXPECT_GE(brackets, 0);
    }
    EXPECT_FALSE(in_string) << solver;
    EXPECT_EQ(braces, 0) << solver;
    EXPECT_EQ(brackets, 0) << solver;
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
  }
}

TEST(SelectionReportJson, EchoesTheSolverSpecificConfig) {
  const std::string json = sample_report("sieve-streaming").to_json();
  EXPECT_NE(json.find("\"streaming\":{\"epsilon\":0.1"), std::string::npos);
  EXPECT_NE(json.find("\"solver\":\"sieve-streaming\""), std::string::npos);
  // Streaming solvers surface their resident-memory footprint.
  EXPECT_NE(json.find("\"peak_resident_elements\":"), std::string::npos);
  EXPECT_NE(json.find("\"num_sieves\":"), std::string::npos);
}

}  // namespace
}  // namespace subsel::api
