// Deadline plumbing through the one-call API: an expired budget on the
// SolverContext degrades every deadline-aware solver into a valid
// best-so-far selection (never an error), request.deadline_ms overrides the
// context's budget, and the degradation is visible in the JSON report.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "../testing/test_instances.h"
#include "api/solver_registry.h"

namespace subsel::api {
namespace {

using subsel::testing::Instance;
using subsel::testing::random_instance;

SelectionRequest make_request(const graph::InMemoryGroundSet& ground_set,
                              const std::string& solver, std::size_t k) {
  SelectionRequest request;
  request.ground_set = &ground_set;
  request.k = k;
  request.objective = core::ObjectiveParams::from_alpha(0.9);
  request.seed = 11;
  request.solver = solver;
  request.distributed.num_machines = 4;
  request.distributed.num_rounds = 3;
  return request;
}

TEST(ApiDeadline, ExpiredContextDeadlineDegradesEveryDeadlineAwareSolver) {
  const Instance instance = random_instance(200, 5, 1501);
  const auto ground_set = instance.ground_set();
  for (const char* solver :
       {"pipeline", "distributed-greedy", "lazy-greedy", "stochastic-greedy",
        "threshold-greedy", "sieve-streaming", "sample-and-prune"}) {
    SolverContext context;
    context.set_deadline(Deadline::after_ms(0));
    const auto request = make_request(ground_set, solver, 20);
    const SelectionReport report = select(request, context);

    EXPECT_TRUE(report.degraded) << solver;
    EXPECT_FALSE(report.degraded_reason.empty()) << solver;
    EXPECT_FALSE(report.preempted) << solver;  // degraded, not preempted
    // Whatever came back is a valid selection: ascending unique ids in
    // range, within budget.
    EXPECT_LE(report.selected.size(), 20u) << solver;
    EXPECT_TRUE(std::is_sorted(report.selected.begin(), report.selected.end()))
        << solver;
    EXPECT_TRUE(std::adjacent_find(report.selected.begin(),
                                   report.selected.end()) ==
                report.selected.end())
        << solver;
    for (const NodeId id : report.selected) {
      EXPECT_LT(static_cast<std::size_t>(id), ground_set.num_points()) << solver;
    }
  }
}

TEST(ApiDeadline, RoundSolversStillReturnFullBudgetWhenDegraded) {
  // The round-based solvers hold the whole ground set as survivors, so even
  // an immediately-expired deadline yields a full size-k (random-quality)
  // selection — the serving-path contract: valid answer, lower quality.
  const Instance instance = random_instance(200, 5, 1502);
  const auto ground_set = instance.ground_set();
  for (const char* solver : {"pipeline", "distributed-greedy"}) {
    SolverContext context;
    context.set_deadline(Deadline::after_ms(0));
    const SelectionReport report =
        select(make_request(ground_set, solver, 20), context);
    EXPECT_TRUE(report.degraded) << solver;
    EXPECT_EQ(report.selected.size(), 20u) << solver;
  }
}

TEST(ApiDeadline, RequestDeadlineOverridesContextDeadline) {
  const Instance instance = random_instance(150, 4, 1503);
  const auto ground_set = instance.ground_set();
  SolverContext context;
  context.set_deadline(Deadline::after_ms(0));  // would degrade on its own
  auto request = make_request(ground_set, "lazy-greedy", 15);
  request.deadline_ms = 60'000;  // generous per-request budget wins
  const SelectionReport report = select(request, context);
  EXPECT_FALSE(report.degraded);
  EXPECT_EQ(report.selected.size(), 15u);
}

TEST(ApiDeadline, UnlimitedContextDoesNotDegrade) {
  const Instance instance = random_instance(150, 4, 1504);
  const auto ground_set = instance.ground_set();
  SolverContext context;
  EXPECT_FALSE(context.deadline().is_limited());
  const SelectionReport report =
      select(make_request(ground_set, "distributed-greedy", 15), context);
  EXPECT_FALSE(report.degraded);
  EXPECT_TRUE(report.degraded_reason.empty());
  EXPECT_EQ(report.selected.size(), 15u);
}

TEST(ApiDeadline, DegradationIsVisibleInTheJsonReport) {
  const Instance instance = random_instance(150, 4, 1505);
  const auto ground_set = instance.ground_set();
  SolverContext context;
  context.set_deadline(Deadline::after_ms(0));
  const SelectionReport report =
      select(make_request(ground_set, "distributed-greedy", 15), context);
  ASSERT_TRUE(report.degraded);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"degraded\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"degraded_reason\""), std::string::npos);
}

}  // namespace
}  // namespace subsel::api
