// API-level constrained-selection conformance: EVERY registered solver ×
// EVERY registered objective × every constraint shape either solves — and
// then the selection must pass the brute-force oracle layer's feasibility
// audit and the report must carry a truthful ConstraintSummary — or is
// rejected up-front with the typed incompatibility_reason. Plus the
// request-resolution details the registry owns: uniform group-cap
// expansion, overlay-deletion folding into blocked ids, the
// bounding×constraints reject, and the constrained-request JSON echo.
#include "api/solver_registry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "../testing/constraint_oracle.h"
#include "../testing/property.h"
#include "../testing/test_instances.h"
#include "api/objective_registry.h"
#include "graph/overlay_ground_set.h"

namespace subsel::api {
namespace {

using subsel::testing::check_property;
using subsel::testing::feasibility_violation;
using subsel::testing::Instance;
using subsel::testing::random_instance;
using subsel::testing::scaled;

/// The constraint shapes the matrix sweeps. `apply` fills request.constraints
/// for a ground set of n points.
struct ConstraintShape {
  const char* name;
  void (*apply)(ConstraintOptions&, std::size_t n);
};

const ConstraintShape kShapes[] = {
    {"knapsack",
     [](ConstraintOptions& c, std::size_t n) {
       c.costs.assign(n, 0.0);
       for (std::size_t i = 0; i < n; ++i) {
         c.costs[i] = 0.2 + 0.05 * static_cast<double>(i % 7);
       }
       c.cost_budget = 1.2;
     }},
    {"partition-matroid",
     [](ConstraintOptions& c, std::size_t n) {
       c.groups.resize(n);
       for (std::size_t i = 0; i < n; ++i) {
         c.groups[i] = static_cast<std::uint32_t>(i % 3);
       }
       c.group_caps = {2, 2, 1};
     }},
    {"blocked",
     [](ConstraintOptions& c, std::size_t n) {
       for (std::size_t i = 0; i < n; i += 3) {
         c.blocked.push_back(static_cast<NodeId>(i));
       }
     }},
    {"all-families",
     [](ConstraintOptions& c, std::size_t n) {
       c.costs.assign(n, 0.3);
       c.cost_budget = 1.5;
       c.groups.resize(n);
       for (std::size_t i = 0; i < n; ++i) {
         c.groups[i] = static_cast<std::uint32_t>(i % 4);
       }
       c.group_cap = 2;  // uniform cap expansion path
       c.blocked = {1, 5};
     }},
};

core::ConstraintSet resolved_set(const ConstraintOptions& options, std::size_t n) {
  core::ConstraintSet constraints;
  constraints.costs = options.costs;
  constraints.cost_budget = options.cost_budget;
  constraints.groups = options.groups;
  constraints.group_caps = options.group_caps;
  if (!constraints.groups.empty() && constraints.group_caps.empty() &&
      options.group_cap > 0) {
    const std::uint32_t max_group =
        *std::max_element(constraints.groups.begin(), constraints.groups.end());
    constraints.group_caps.assign(max_group + 1, options.group_cap);
  }
  constraints.blocked = options.blocked;
  constraints.validate(n);
  return constraints;
}

TEST(ConstraintApiConformance, EverySolverObjectiveConstraintCellSolvesOrRejects) {
  const std::size_t n = 24;
  const Instance instance = random_instance(n, 4, 8801);
  const auto ground_set = instance.ground_set();

  for (const SolverInfo& solver : SolverRegistry::instance().list()) {
    for (const ObjectiveInfo& objective : ObjectiveRegistry::instance().list()) {
      for (const ConstraintShape& shape : kShapes) {
        SelectionRequest request;
        request.ground_set = &ground_set;
        request.k = 5;
        request.solver = solver.name;
        request.objective_name = objective.name;
        request.bounding.enabled = false;  // the bounding reject has its own test
        request.seed = 97;
        shape.apply(request.constraints, n);
        const std::string cell =
            solver.name + " x " + objective.name + " x " + shape.name;

        const std::string reason = incompatibility_reason(
            solver.caps, objective.caps, /*bounding_enabled=*/false,
            /*constrained=*/true);
        if (!reason.empty()) {
          EXPECT_THROW(select(request), std::invalid_argument) << cell;
          continue;
        }
        SelectionReport report;
        ASSERT_NO_THROW(report = select(request)) << cell;
        const core::ConstraintSet constraints =
            resolved_set(request.constraints, n);
        EXPECT_EQ(feasibility_violation(report.selected, constraints, 5), "")
            << cell;
        ASSERT_TRUE(report.constraints.has_value()) << cell;
        EXPECT_TRUE(report.constraints->feasible) << cell;
        EXPECT_DOUBLE_EQ(report.constraints->selected_cost,
                         constraints.cost_of(report.selected))
            << cell;
        EXPECT_EQ(report.constraints->num_blocked, constraints.blocked.size())
            << cell;
      }
    }
  }
}

TEST(ConstraintApiConformance, RandomizedConstraintsStayFeasibleAcrossSolvers) {
  // The per-seed sweep runs every constrained-capable solver on a fresh
  // random instance + random constraint set; pairwise objective keeps the
  // matrix affordable at >= 100 seeds (the full objective matrix runs in the
  // deterministic cell sweep above).
  check_property(
      "randomized solver feasibility", 100,
      [](std::uint64_t seed, double scale) -> std::optional<std::string> {
        const std::size_t n = scaled(18, scale, 6);
        const std::size_t k = scaled(5, scale, 2);
        const Instance instance = random_instance(n, 3, seed);
        const auto ground_set = instance.ground_set();
        Rng rng(seed ^ 0xabba);
        const core::ConstraintSet constraints =
            subsel::testing::random_constraints(n, rng);
        // The generator may draw an empty family mix (e.g. zero blocked
        // ids); the registry then rightly stays on the unconstrained path
        // and emits no summary.
        const bool active = constraints.cost_budget > 0.0 ||
                            !constraints.groups.empty() ||
                            !constraints.blocked.empty();

        for (const SolverInfo& solver : SolverRegistry::instance().list()) {
          if (!solver.caps.constrained) continue;
          SelectionRequest request;
          request.ground_set = &ground_set;
          request.k = k;
          request.solver = solver.name;
          request.bounding.enabled = false;
          request.seed = seed;
          request.constraints.costs = constraints.costs;
          request.constraints.cost_budget = constraints.cost_budget;
          request.constraints.groups = constraints.groups;
          request.constraints.group_caps = constraints.group_caps;
          request.constraints.blocked = constraints.blocked;

          const SelectionReport report = select(request);
          const std::string violation =
              feasibility_violation(report.selected, constraints, k);
          if (!violation.empty()) {
            return std::string(solver.name) + ": " + violation;
          }
          if (active && !report.constraints.has_value()) {
            return std::string(solver.name) + ": report lost the constraint summary";
          }
        }
        return std::nullopt;
      });
}

TEST(ConstraintApiConformance, BoundingPlusConstraintsIsATypedReject) {
  const Instance instance = random_instance(20, 3, 31);
  const auto ground_set = instance.ground_set();
  SelectionRequest request;
  request.ground_set = &ground_set;
  request.k = 5;
  request.solver = "pipeline";
  request.bounding.enabled = true;
  request.constraints.blocked = {0};

  try {
    select(request);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("bounding"), std::string::npos)
        << e.what();
  }
  // Same cell with bounding off solves.
  request.bounding.enabled = false;
  EXPECT_NO_THROW(select(request));
}

TEST(ConstraintApiConformance, NonConstrainedCapableSolverIsATypedReject) {
  SolverCapabilities external;  // defaults: constrained == false
  core::ObjectiveKernelCaps objective_caps;
  objective_caps.utility_bounds = true;
  objective_caps.distributed_scoring = true;
  const std::string reason =
      incompatibility_reason(external, objective_caps, false, true);
  EXPECT_NE(reason.find("ConstraintTracker"), std::string::npos) << reason;
  // The 3-arg overload stays the unconstrained special case.
  EXPECT_EQ(incompatibility_reason(external, objective_caps, false), "");
}

TEST(ConstraintApiConformance, UniformGroupCapExpandsToEveryGroup) {
  const std::size_t n = 12;
  const Instance instance = random_instance(n, 3, 57);
  const auto ground_set = instance.ground_set();
  SelectionRequest request;
  request.ground_set = &ground_set;
  request.k = 8;
  request.solver = "lazy-greedy";
  request.bounding.enabled = false;
  request.constraints.groups.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    request.constraints.groups[i] = static_cast<std::uint32_t>(i % 4);
  }
  request.constraints.group_cap = 1;  // uniform: every group capped at 1

  const SelectionReport report = select(request);
  EXPECT_LE(report.selected.size(), 4u);  // 4 groups x cap 1
  std::vector<int> counts(4, 0);
  for (const NodeId v : report.selected) {
    ++counts[request.constraints.groups[static_cast<std::size_t>(v)]];
  }
  for (const int c : counts) EXPECT_LE(c, 1);
  ASSERT_TRUE(report.constraints.has_value());
  EXPECT_EQ(report.constraints->num_groups, 4u);
}

TEST(ConstraintApiConformance, OverlayDeletionsAreFoldedIntoBlocked) {
  const Instance instance = random_instance(30, 4, 63);
  const auto base = instance.ground_set();
  graph::OverlayGroundSet overlay(base);
  overlay.erase(2);
  overlay.erase(11);
  overlay.erase(19);

  SelectionRequest request;
  request.ground_set = &overlay;
  request.k = 10;
  request.solver = "lazy-greedy";
  request.bounding.enabled = false;

  // No explicit constraints: the registry folds the deletions in on its own.
  const SelectionReport report = select(request);
  for (const NodeId v : report.selected) {
    EXPECT_TRUE(overlay.is_live(v)) << "selected deleted id " << v;
  }
  ASSERT_TRUE(report.constraints.has_value());
  EXPECT_EQ(report.constraints->num_blocked, 3u);

  // The JSON echo carries the summary.
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"constraints\""), std::string::npos);
  EXPECT_NE(json.find("\"num_blocked\":3"), std::string::npos);
  EXPECT_NE(json.find("\"feasible\":true"), std::string::npos);
}

TEST(ConstraintApiConformance, MalformedConstraintOptionsRejectUpFront) {
  const Instance instance = random_instance(10, 3, 71);
  const auto ground_set = instance.ground_set();
  SelectionRequest request;
  request.ground_set = &ground_set;
  request.k = 3;
  request.solver = "lazy-greedy";
  request.bounding.enabled = false;

  // Costs sized for the wrong ground set.
  request.constraints.costs = {1.0, 2.0};
  request.constraints.cost_budget = 1.0;
  EXPECT_THROW(select(request), std::invalid_argument);
  request.constraints = {};

  // Group id without any cap.
  request.constraints.groups.assign(10, 0);
  EXPECT_THROW(select(request), std::invalid_argument);
  request.constraints = {};

  // Blocked id out of range.
  request.constraints.blocked = {99};
  EXPECT_THROW(select(request), std::invalid_argument);
}

}  // namespace
}  // namespace subsel::api
