// Registry metadata and the cross-solver conformance suite: every registered
// solver, run through the one SelectionRequest/SelectionReport schema on the
// shared small instances, must return ascending unique ids within budget and
// report exactly the objective a fresh PairwiseObjective assigns to them.
#include "api/solver_registry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "../testing/test_instances.h"

namespace subsel::api {
namespace {

using subsel::testing::Instance;
using subsel::testing::random_instance;

std::vector<std::string> registered_names() {
  std::vector<std::string> names;
  for (const auto& info : SolverRegistry::instance().list()) {
    names.push_back(info.name);
  }
  return names;
}

TEST(SolverRegistry, RegistersTheFullSolverFamily) {
  const auto infos = SolverRegistry::instance().list();
  EXPECT_GE(infos.size(), 8u);
  for (const auto& info : infos) {
    EXPECT_FALSE(info.name.empty());
    EXPECT_FALSE(info.description.empty()) << info.name;
    EXPECT_FALSE(info.guarantee.empty()) << info.name;
    EXPECT_FALSE(info.memory_regime.empty()) << info.name;
    EXPECT_TRUE(SolverRegistry::instance().contains(info.name));
    EXPECT_NE(SolverRegistry::instance().info(info.name), nullptr);
  }
  // The names the CLI/docs/benches rely on.
  for (const char* name :
       {"pipeline", "distributed-greedy", "dataflow", "greedi", "randgreedi",
        "lazy-greedy", "stochastic-greedy", "threshold-greedy",
        "sieve-streaming", "sample-and-prune", "random"}) {
    EXPECT_TRUE(SolverRegistry::instance().contains(name)) << name;
  }
}

TEST(SolverRegistry, UnknownSolverThrowsWithKnownNames) {
  const Instance instance = random_instance(50, 4, 7001);
  const auto ground_set = instance.ground_set();
  SelectionRequest request;
  request.ground_set = &ground_set;
  request.k = 5;
  request.solver = "does-not-exist";
  try {
    select(request);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    // The error lists the registered solvers so CLI users can self-serve.
    EXPECT_NE(std::string(e.what()).find("pipeline"), std::string::npos);
  }
}

TEST(SolverRegistry, RejectsInvalidBudgets) {
  const Instance instance = random_instance(50, 4, 7002);
  const auto ground_set = instance.ground_set();
  SelectionRequest request;
  request.ground_set = &ground_set;
  EXPECT_THROW(select(request), std::invalid_argument);  // no k, no fraction
  request.fraction = 1.5;
  EXPECT_THROW(select(request), std::invalid_argument);
  request.fraction = 0.0;
  request.k = 51;
  EXPECT_THROW(select(request), std::invalid_argument);  // k > |V|
  request.ground_set = nullptr;
  request.k = 5;
  EXPECT_THROW(select(request), std::invalid_argument);
}

/// Conformance suite: parameterized over every registered solver name.
class SolverConformance : public ::testing::TestWithParam<std::string> {};

TEST_P(SolverConformance, ReturnsValidAscendingSubsetWithExactObjective) {
  const std::string solver = GetParam();
  // Two shapes: a denser 120-point instance and a sparser 300-point one.
  const std::vector<Instance> instances = {random_instance(120, 8, 6101),
                                           random_instance(300, 4, 6102)};
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const auto ground_set = instances[i].ground_set();
    const std::size_t k = ground_set.num_points() / 10;

    SelectionRequest request;
    request.ground_set = &ground_set;
    request.k = k;
    request.objective = core::ObjectiveParams::from_alpha(0.9);
    request.seed = 97 + i;
    request.solver = solver;
    request.distributed.num_machines = 4;
    request.distributed.num_rounds = 3;
    request.dataflow.num_shards = 8;

    SolverContext context;
    const SelectionReport report = select(request, context);

    EXPECT_EQ(report.solver, solver);
    EXPECT_EQ(report.k_requested, k);
    EXPECT_EQ(report.num_points, ground_set.num_points());
    EXPECT_FALSE(report.preempted);
    EXPECT_GT(report.total_seconds, 0.0);
    ASSERT_FALSE(report.timings.empty());

    // Ascending unique ids, within budget and range.
    EXPECT_LE(report.selected.size(), k) << "instance " << i;
    EXPECT_TRUE(std::is_sorted(report.selected.begin(), report.selected.end()));
    EXPECT_EQ(std::adjacent_find(report.selected.begin(), report.selected.end()),
              report.selected.end());
    for (const NodeId id : report.selected) {
      EXPECT_GE(id, 0);
      EXPECT_LT(static_cast<std::size_t>(id), ground_set.num_points());
    }
    // Every solver except the streaming sieve fills the budget on these
    // instances; the sieve may legitimately return fewer.
    if (solver != "sieve-streaming") {
      EXPECT_EQ(report.selected.size(), k) << "instance " << i;
    }

    // The report's objective must equal a fresh exact evaluation of the
    // returned subset — never the solver's internal accounting.
    core::PairwiseObjective objective(ground_set, request.objective);
    const double fresh = objective.evaluate(report.selected);
    EXPECT_NEAR(report.objective, fresh, 1e-9 * (1.0 + std::abs(fresh)))
        << solver << " instance " << i;
  }
}

TEST_P(SolverConformance, IsDeterministicGivenTheSeed) {
  const std::string solver = GetParam();
  const Instance instance = random_instance(150, 6, 6103);
  const auto ground_set = instance.ground_set();

  SelectionRequest request;
  request.ground_set = &ground_set;
  request.k = 15;
  request.seed = 1234;
  request.solver = solver;
  request.distributed.num_machines = 4;
  request.distributed.num_rounds = 2;
  request.dataflow.num_shards = 8;

  const SelectionReport first = select(request);
  const SelectionReport second = select(request);
  EXPECT_EQ(first.selected, second.selected) << solver;
  EXPECT_DOUBLE_EQ(first.objective, second.objective) << solver;
}

/// GTest parameter names must be alphanumeric; solver names use dashes.
std::string sanitize(const ::testing::TestParamInfo<std::string>& info) {
  std::string name = info.param;
  std::replace(name.begin(), name.end(), '-', '_');
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllRegisteredSolvers, SolverConformance,
                         ::testing::ValuesIn(registered_names()), sanitize);

TEST(SolverContextApi, CancellationFromProgressPreemptsTheRun) {
  const Instance instance = random_instance(400, 6, 6104);
  const auto ground_set = instance.ground_set();

  SelectionRequest request;
  request.ground_set = &ground_set;
  request.k = 40;
  request.solver = "distributed-greedy";
  request.distributed.num_machines = 4;
  request.distributed.num_rounds = 6;

  SolverContext context;
  std::size_t rounds_seen = 0;
  context.set_progress([&](const ProgressEvent& event) {
    ++rounds_seen;
    if (event.step >= 2) context.cancel().request_stop();
  });
  const SelectionReport report = select(request, context);
  EXPECT_TRUE(report.preempted);
  EXPECT_TRUE(report.selected.empty());
  EXPECT_EQ(report.rounds.size(), 2u);
  EXPECT_EQ(rounds_seen, 2u);

  // A fresh context re-arms; the same request then completes.
  SolverContext clean;
  const SelectionReport full = select(request, clean);
  EXPECT_FALSE(full.preempted);
  EXPECT_EQ(full.selected.size(), 40u);
}

TEST(SolverContextApi, SharedArenasSurviveAcrossRuns) {
  const Instance instance = random_instance(200, 5, 6105);
  const auto ground_set = instance.ground_set();

  SelectionRequest request;
  request.ground_set = &ground_set;
  request.k = 20;
  request.solver = "distributed-greedy";
  request.distributed.num_machines = 2;
  request.distributed.num_rounds = 2;

  // One context, many runs: results must match fresh-context runs exactly
  // (arena reuse is invisible to selection output).
  SolverContext shared;
  const SelectionReport first = select(request, shared);
  const SelectionReport again = select(request, shared);
  const SelectionReport fresh = select(request);
  EXPECT_EQ(first.selected, again.selected);
  EXPECT_EQ(first.selected, fresh.selected);
}

}  // namespace
}  // namespace subsel::api
