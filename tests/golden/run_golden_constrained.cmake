# Golden constrained-selection end-to-end check, run by ctest (see
# CMakeLists.txt): executes the subsel CLI against the committed toy600
# fixture with BOTH constraint families active — the committed cost sidecar
# under a binding knapsack budget (12.5 covers ~24 of the 60 requested
# points) and the committed group sidecar under a uniform partition-matroid
# cap — once in-memory and once out-of-core, and byte-compares both
# selections against the committed expectation. Catches silent drift in the
# sidecar parsers, the constraint threading through the CLI/solver stack,
# and the tracker's acceptance ordering in one shot.
#
# Required -D variables: SUBSEL_CLI, GOLDEN_DIR, WORK_DIR.

file(MAKE_DIRECTORY "${WORK_DIR}")

set(constraint_flags
    "--cost-file=${GOLDEN_DIR}/toy600.costs" --cost-budget=12.5
    "--group-file=${GOLDEN_DIR}/toy600.groups" --group-cap=5)

foreach(mode memory disk)
  set(mode_flags "")
  if(mode STREQUAL disk)
    set(mode_flags --disk --cache-blocks=8 --block-edges=256 --disk-shards=4
                   --prefetch-depth=2)
  endif()
  execute_process(
    COMMAND "${SUBSEL_CLI}" select
            "--data=${GOLDEN_DIR}/toy600" --k=60 --solver=distributed-greedy
            --machines=6 --rounds=4 --seed=23
            ${constraint_flags} ${mode_flags}
            "--out=${WORK_DIR}/got_${mode}.ids"
            "--report=${WORK_DIR}/got_${mode}.json"
    RESULT_VARIABLE exit_code
    OUTPUT_VARIABLE stdout
    ERROR_VARIABLE stderr)
  if(NOT exit_code EQUAL 0)
    message(FATAL_ERROR "constrained select (${mode}) failed (${exit_code}):\n${stdout}\n${stderr}")
  endif()

  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            "${WORK_DIR}/got_${mode}.ids"
            "${GOLDEN_DIR}/expected_constrained_subset.ids"
    RESULT_VARIABLE diff_code)
  if(NOT diff_code EQUAL 0)
    file(READ "${WORK_DIR}/got_${mode}.ids" got)
    message(FATAL_ERROR "constrained ${mode} selection drifted from the"
                        " committed golden subset"
                        " (tests/golden/expected_constrained_subset.ids).\nGot:\n${got}")
  endif()

  # The report must carry a truthful constraint summary.
  file(READ "${WORK_DIR}/got_${mode}.json" report)
  foreach(needle "subsel.selection_report.v1" "\"constraints\""
                 "\"cost_budget\":12.5" "\"num_groups\":8" "\"feasible\":true")
    string(FIND "${report}" "${needle}" at)
    if(at EQUAL -1)
      message(FATAL_ERROR "${mode} report is missing ${needle}:\n${report}")
    endif()
  endforeach()
endforeach()

# A budget flag without its sidecar must be rejected up-front, exit != 0.
execute_process(
  COMMAND "${SUBSEL_CLI}" select "--data=${GOLDEN_DIR}/toy600" --k=60
          --cost-budget=12.5 "--out=${WORK_DIR}/reject.ids"
  RESULT_VARIABLE reject_code
  OUTPUT_VARIABLE reject_out
  ERROR_VARIABLE reject_err)
if(reject_code EQUAL 0)
  message(FATAL_ERROR "select accepted --cost-budget without --cost-file")
endif()
string(FIND "${reject_err}" "cost" at)
if(at EQUAL -1)
  message(FATAL_ERROR "budget-without-sidecar failure lacks a clear message: ${reject_err}")
endif()

# A malformed sidecar must fail loudly naming the offending line.
file(WRITE "${WORK_DIR}/bad.costs" "0.5\nnot-a-number\n0.25\n")
execute_process(
  COMMAND "${SUBSEL_CLI}" select "--data=${GOLDEN_DIR}/toy600" --k=60
          "--cost-file=${WORK_DIR}/bad.costs" --cost-budget=1.0
          "--out=${WORK_DIR}/bad.ids"
  RESULT_VARIABLE bad_code
  OUTPUT_VARIABLE bad_out
  ERROR_VARIABLE bad_err)
if(bad_code EQUAL 0)
  message(FATAL_ERROR "select accepted a malformed cost sidecar")
endif()
string(FIND "${bad_err}" "line 2" at)
if(at EQUAL -1)
  message(FATAL_ERROR "malformed-sidecar failure does not name the line: ${bad_err}")
endif()

message(STATUS "golden constrained fixture: in-memory and out-of-core"
               " selections identical, sidecar errors rejected loudly")
