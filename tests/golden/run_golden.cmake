# Golden out-of-core end-to-end check, run by ctest (see CMakeLists.txt):
# executes the subsel CLI against the COMMITTED binary fixture
# (tests/golden/toy600[.graph]) with the adjacency served from disk through
# the sharded cache, and compares the selected subset byte-for-byte against
# the committed expectation. Catches silent drift in the on-disk format, the
# cache serving layer, and the solver's selections in one shot. The
# library-level twin (integration/end_to_end_test.cpp) additionally checks
# the objective value.
#
# Required -D variables: SUBSEL_CLI, GOLDEN_DIR, WORK_DIR.

file(MAKE_DIRECTORY "${WORK_DIR}")

execute_process(
  COMMAND "${SUBSEL_CLI}" select
          "--data=${GOLDEN_DIR}/toy600" --k=60 --solver=distributed-greedy
          --machines=6 --rounds=4 --seed=23
          --disk --cache-blocks=8 --block-edges=256 --disk-shards=4
          --prefetch-depth=2
          "--out=${WORK_DIR}/got_subset.ids"
          "--report=${WORK_DIR}/got_report.json"
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)
if(NOT exit_code EQUAL 0)
  message(FATAL_ERROR "subsel select --disk failed (${exit_code}):\n${stdout}\n${stderr}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          "${WORK_DIR}/got_subset.ids" "${GOLDEN_DIR}/expected_subset.ids"
  RESULT_VARIABLE diff_code)
if(NOT diff_code EQUAL 0)
  file(READ "${WORK_DIR}/got_subset.ids" got)
  message(FATAL_ERROR "out-of-core selection drifted from the committed golden"
                      " subset (tests/golden/expected_subset.ids).\nGot:\n${got}")
endif()

# The report must identify the run and carry the out-of-core cache section.
file(READ "${WORK_DIR}/got_report.json" report)
foreach(needle "subsel.selection_report.v1" "\"disk_cache\"" "\"num_shards\":4")
  string(FIND "${report}" "${needle}" at)
  if(at EQUAL -1)
    message(FATAL_ERROR "report is missing ${needle}:\n${report}")
  endif()
endforeach()

# A corrupted graph file must fail loudly with a clear message, exit != 0.
file(WRITE "${WORK_DIR}/corrupt.graph" "XXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXX")
file(COPY "${GOLDEN_DIR}/toy600" DESTINATION "${WORK_DIR}")
file(REMOVE "${WORK_DIR}/corrupt")
file(RENAME "${WORK_DIR}/toy600" "${WORK_DIR}/corrupt")
execute_process(
  COMMAND "${SUBSEL_CLI}" select "--data=${WORK_DIR}/corrupt" --k=60 --disk
          "--out=${WORK_DIR}/corrupt.ids"
  RESULT_VARIABLE corrupt_code
  OUTPUT_VARIABLE corrupt_out
  ERROR_VARIABLE corrupt_err)
if(corrupt_code EQUAL 0)
  message(FATAL_ERROR "select --disk accepted a corrupt graph file")
endif()
string(FIND "${corrupt_err}" "not a SimilarityGraph file" at)
if(at EQUAL -1)
  message(FATAL_ERROR "corrupt-graph failure lacks a clear message: ${corrupt_err}")
endif()

message(STATUS "golden out-of-core fixture: selections identical, corrupt file rejected")
