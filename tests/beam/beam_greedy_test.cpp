// The dataflow implementation of the multi-round distributed greedy
// (Section 4.4): validity, determinism, quality parity with the in-memory
// implementation, bounding-state handoff, and the per-worker memory budget.
#include "beam/beam_greedy.h"

#include <gtest/gtest.h>

#include <set>

#include "../testing/test_instances.h"
#include "core/bounding.h"
#include "dataflow/transforms.h"

namespace subsel::beam {
namespace {

using core::NodeId;
using subsel::testing::Instance;
using subsel::testing::random_instance;

dataflow::Pipeline make_pipeline(std::size_t shards = 16) {
  dataflow::PipelineOptions options;
  options.num_shards = shards;
  return dataflow::Pipeline(options);
}

BeamGreedyConfig make_config(std::size_t machines, std::size_t rounds,
                             bool adaptive = false, double alpha = 0.9,
                             std::uint64_t seed = 61) {
  BeamGreedyConfig config;
  config.objective = core::ObjectiveParams::from_alpha(alpha);
  config.num_machines = machines;
  config.num_rounds = rounds;
  config.adaptive_partitioning = adaptive;
  config.seed = seed;
  return config;
}

TEST(BeamGreedy, SelectsExactlyKUniqueIds) {
  const Instance instance = random_instance(400, 5, 901);
  const auto ground_set = instance.ground_set();
  auto pipeline = make_pipeline();
  const auto result =
      beam_distributed_greedy(pipeline, ground_set, 40, make_config(8, 4));
  EXPECT_EQ(result.selected.size(), 40u);
  std::set<NodeId> unique(result.selected.begin(), result.selected.end());
  EXPECT_EQ(unique.size(), 40u);
  EXPECT_TRUE(std::is_sorted(result.selected.begin(), result.selected.end()));
}

TEST(BeamGreedy, DeterministicGivenSeed) {
  const Instance instance = random_instance(300, 4, 902);
  const auto ground_set = instance.ground_set();
  auto p1 = make_pipeline();
  auto p2 = make_pipeline(64);  // shard count must not affect the result
  const auto a = beam_distributed_greedy(p1, ground_set, 30, make_config(8, 3));
  const auto b = beam_distributed_greedy(p2, ground_set, 30, make_config(8, 3));
  EXPECT_EQ(a.selected, b.selected);
  EXPECT_EQ(a.objective, b.objective);
}

TEST(BeamGreedy, QualityMatchesInMemoryImplementation) {
  // Same algorithm, different partition randomness: expect parity within a
  // few percent, averaged over seeds.
  const Instance instance = random_instance(600, 6, 903);
  const auto ground_set = instance.ground_set();
  double beam_total = 0.0, core_total = 0.0;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    auto pipeline = make_pipeline();
    beam_total += beam_distributed_greedy(pipeline, ground_set, 60,
                                          make_config(8, 4, false, 0.9, seed))
                      .objective;
    core::DistributedGreedyConfig config = make_config(8, 4, false, 0.9, seed);
    core_total += core::distributed_greedy(ground_set, 60, config).objective;
  }
  EXPECT_NEAR(beam_total / core_total, 1.0, 0.05);
}

TEST(BeamGreedy, SingleMachineSingleRoundMatchesCentralizedQuality) {
  const Instance instance = random_instance(200, 4, 904);
  const auto ground_set = instance.ground_set();
  auto pipeline = make_pipeline();
  const auto result =
      beam_distributed_greedy(pipeline, ground_set, 20, make_config(1, 1));
  const auto centralized =
      core::naive_greedy(ground_set, core::ObjectiveParams::from_alpha(0.9), 20);
  EXPECT_NEAR(result.objective, centralized.objective, 1e-9);
}

TEST(BeamGreedy, MoreRoundsDoNotHurtOnAverage) {
  const Instance instance = random_instance(500, 6, 905);
  const auto ground_set = instance.ground_set();
  double single = 0.0, multi = 0.0;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    auto p1 = make_pipeline();
    auto p2 = make_pipeline();
    single += beam_distributed_greedy(p1, ground_set, 50,
                                      make_config(16, 1, false, 0.9, seed))
                  .objective;
    multi += beam_distributed_greedy(p2, ground_set, 50,
                                     make_config(16, 8, false, 0.9, seed))
                 .objective;
  }
  EXPECT_GE(multi, single);
}

TEST(BeamGreedy, HonorsBoundingState) {
  const Instance instance = random_instance(150, 4, 906);
  const auto ground_set = instance.ground_set();
  core::BoundingConfig bounding_config;
  bounding_config.objective = core::ObjectiveParams::from_alpha(0.9);
  bounding_config.sampling = core::BoundingSampling::kUniform;
  bounding_config.sample_fraction = 0.3;
  auto bounding = core::bound(ground_set, 30, bounding_config);

  auto pipeline = make_pipeline();
  const auto result = beam_distributed_greedy(pipeline, ground_set, 30,
                                              make_config(4, 2), &bounding.state);
  EXPECT_EQ(result.selected.size(), 30u);
  for (NodeId v : bounding.state.selected_ids()) {
    EXPECT_TRUE(std::binary_search(result.selected.begin(), result.selected.end(), v))
        << "bounding-selected point " << v << " missing";
  }
  for (NodeId v : result.selected) {
    EXPECT_FALSE(bounding.state.is_discarded(v))
        << "discarded point " << v << " re-selected";
  }
}

TEST(BeamGreedy, RoundStatsAreConsistent) {
  const Instance instance = random_instance(300, 4, 907);
  const auto ground_set = instance.ground_set();
  auto pipeline = make_pipeline();
  const auto result =
      beam_distributed_greedy(pipeline, ground_set, 30, make_config(8, 4));
  ASSERT_EQ(result.rounds.size(), 4u);
  EXPECT_EQ(result.rounds.front().input_size, 300u);
  for (std::size_t i = 0; i < result.rounds.size(); ++i) {
    EXPECT_EQ(result.rounds[i].round, i + 1);
    EXPECT_LE(result.rounds[i].output_size, result.rounds[i].input_size);
    EXPECT_GT(result.rounds[i].peak_partition_bytes, 0u);
    if (i > 0) {
      EXPECT_EQ(result.rounds[i].input_size, result.rounds[i - 1].output_size);
    }
  }
}

TEST(BeamGreedy, StaysWithinWorkerMemoryBudget) {
  // Budget sized for a partition, far below the whole instance: the run
  // must succeed and never exceed it.
  const Instance instance = random_instance(2000, 6, 908);
  const auto ground_set = instance.ground_set();

  dataflow::PipelineOptions options;
  options.num_shards = 32;
  options.worker_memory_bytes = 64 * 1024;
  dataflow::Pipeline pipeline(options);

  const auto result =
      beam_distributed_greedy(pipeline, ground_set, 200, make_config(16, 2));
  EXPECT_EQ(result.selected.size(), 200u);
  EXPECT_LE(pipeline.peak_shard_bytes(), 64u * 1024u);
}

TEST(BeamGreedy, AdaptivePartitioningReducesPartitions) {
  const Instance instance = random_instance(400, 5, 909);
  const auto ground_set = instance.ground_set();
  auto pipeline = make_pipeline();
  const auto result =
      beam_distributed_greedy(pipeline, ground_set, 20, make_config(16, 6, true));
  ASSERT_EQ(result.rounds.size(), 6u);
  EXPECT_GT(result.rounds.front().num_partitions, result.rounds.back().num_partitions);
  EXPECT_EQ(result.rounds.back().num_partitions, 1u);
}

TEST(BeamGreedy, CancellationMidRunYieldsCleanPreemption) {
  const Instance instance = random_instance(300, 4, 911);
  const auto ground_set = instance.ground_set();
  auto pipeline = make_pipeline();
  auto config = make_config(4, 5);
  config.progress = [&config](const ProgressEvent& event) {
    if (event.step >= 1) config.cancel.request_stop();
  };
  const auto cancelled =
      beam_distributed_greedy(pipeline, ground_set, 30, config);
  EXPECT_TRUE(cancelled.preempted);
  EXPECT_TRUE(cancelled.selected.empty());
  EXPECT_EQ(cancelled.rounds.size(), 1u);

  // Re-armed, the same config completes and matches an undisturbed run.
  config.cancel.reset();
  config.progress = nullptr;
  auto pipeline2 = make_pipeline();
  const auto full = beam_distributed_greedy(pipeline2, ground_set, 30, config);
  auto pipeline3 = make_pipeline();
  const auto undisturbed =
      beam_distributed_greedy(pipeline3, ground_set, 30, make_config(4, 5));
  EXPECT_FALSE(full.preempted);
  EXPECT_EQ(full.selected, undisturbed.selected);
}

TEST(BeamGreedy, ZeroOpenBudgetReturnsBoundingSelection) {
  const Instance instance = random_instance(50, 3, 910);
  const auto ground_set = instance.ground_set();
  core::SelectionState state(50);
  for (NodeId v = 0; v < 10; ++v) state.select(v);
  auto pipeline = make_pipeline();
  const auto result =
      beam_distributed_greedy(pipeline, ground_set, 10, make_config(4, 2), &state);
  std::vector<NodeId> expected(10);
  for (NodeId v = 0; v < 10; ++v) expected[static_cast<std::size_t>(v)] = v;
  EXPECT_EQ(result.selected, expected);
}

}  // namespace
}  // namespace subsel::beam
