// Equivalence of the Section-5 dataflow implementation with the in-memory
// reference — the core systems claim: bounding runs correctly without the
// subset being resident on any worker.
#include "beam/beam_bounding.h"

#include <gtest/gtest.h>

#include <cmath>

#include "../testing/test_instances.h"
#include "dataflow/transforms.h"

namespace subsel::beam {
namespace {

using core::BoundingSampling;
using subsel::testing::Instance;
using subsel::testing::random_instance;

dataflow::Pipeline make_pipeline(std::size_t shards = 8) {
  dataflow::PipelineOptions options;
  options.num_shards = shards;
  return dataflow::Pipeline(options);
}

BoundingConfig make_config(double alpha, BoundingSampling sampling, double p) {
  BoundingConfig config;
  config.objective = core::ObjectiveParams::from_alpha(alpha);
  config.sampling = sampling;
  config.sample_fraction = p;
  return config;
}

TEST(BeamBounds, MatchInMemoryBoundsExactly) {
  const Instance instance = random_instance(80, 5, 501);
  const auto ground_set = instance.ground_set();
  auto pipeline = make_pipeline();
  const auto config = make_config(0.9, BoundingSampling::kNone, 1.0);

  SelectionState state(80);
  state.select(3);
  state.select(40);
  state.discard(11);
  state.discard(70);

  std::vector<double> u_min, u_max;
  core::detail::compute_utility_bounds(ground_set, state, config, 5, u_min, u_max);
  const auto beam_bounds =
      to_vector(compute_bounds_collection(pipeline, ground_set, state, config, 5));

  ASSERT_EQ(beam_bounds.size(), state.num_unassigned());
  for (const auto& [id, bounds] : beam_bounds) {
    EXPECT_DOUBLE_EQ(bounds.u_max, u_max[static_cast<std::size_t>(id)]) << id;
    EXPECT_DOUBLE_EQ(bounds.u_min, u_min[static_cast<std::size_t>(id)]) << id;
  }
}

TEST(BeamBounds, MatchInMemoryWithSampling) {
  const Instance instance = random_instance(60, 4, 502);
  const auto ground_set = instance.ground_set();
  auto pipeline = make_pipeline();
  for (auto sampling : {BoundingSampling::kUniform, BoundingSampling::kWeighted}) {
    const auto config = make_config(0.5, sampling, 0.4);
    SelectionState state(60);
    state.select(7);
    state.discard(12);

    std::vector<double> u_min, u_max;
    core::detail::compute_utility_bounds(ground_set, state, config, 9, u_min, u_max);
    const auto beam_bounds =
        to_vector(compute_bounds_collection(pipeline, ground_set, state, config, 9));
    for (const auto& [id, bounds] : beam_bounds) {
      EXPECT_DOUBLE_EQ(bounds.u_min, u_min[static_cast<std::size_t>(id)])
          << "sampling mode " << static_cast<int>(sampling) << " id " << id;
    }
  }
}

class BeamBoundEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(BeamBoundEquivalenceTest, FullRunMatchesInMemoryBounding) {
  const auto [alpha, mode] = GetParam();
  const Instance instance = random_instance(70, 5, 503 + mode);
  const auto ground_set = instance.ground_set();
  auto pipeline = make_pipeline();

  BoundingConfig config = make_config(
      alpha,
      mode == 0 ? BoundingSampling::kNone
                : (mode == 1 ? BoundingSampling::kUniform : BoundingSampling::kWeighted),
      mode == 0 ? 1.0 : 0.3);

  const auto reference = core::bound(ground_set, 14, config);
  const auto distributed = beam_bound(pipeline, ground_set, 14, config);

  EXPECT_EQ(distributed.included, reference.included);
  EXPECT_EQ(distributed.excluded, reference.excluded);
  EXPECT_EQ(distributed.grow_rounds, reference.grow_rounds);
  EXPECT_EQ(distributed.shrink_rounds, reference.shrink_rounds);
  EXPECT_EQ(distributed.k_remaining, reference.k_remaining);
  EXPECT_EQ(distributed.state.selected_ids(), reference.state.selected_ids());
  EXPECT_EQ(distributed.state.unassigned_ids(), reference.state.unassigned_ids());
}

INSTANTIATE_TEST_SUITE_P(
    AlphaAndSampling, BeamBoundEquivalenceTest,
    ::testing::Combine(::testing::Values(0.9, 0.5), ::testing::Values(0, 1, 2)));

TEST(BeamBound, WorksUnderTightWorkerMemoryBudget) {
  // The point of Section 5: the run must succeed even when one worker could
  // not hold the whole instance. Budget ~1/4 of the fanned graph size.
  const Instance instance = random_instance(400, 8, 504);
  const auto ground_set = instance.ground_set();

  dataflow::PipelineOptions options;
  options.num_shards = 64;
  options.worker_memory_bytes = 32 * 1024;
  dataflow::Pipeline pipeline(options);

  const auto config = make_config(0.9, BoundingSampling::kUniform, 0.3);
  const auto result = beam_bound(pipeline, ground_set, 40, config);
  EXPECT_EQ(result.included + result.k_remaining, 40u);
  EXPECT_LE(pipeline.peak_shard_bytes(), 32u * 1024u);
  // Sanity: the whole-instance working set would have blown the budget.
  EXPECT_GT(400u * 8u * sizeof(graph::Edge) + 400 * 16, 32u * 1024u);
}

TEST(BeamBound, CountersTrackDecisions) {
  const Instance instance = random_instance(100, 5, 505);
  const auto ground_set = instance.ground_set();
  auto pipeline = make_pipeline();
  const auto config = make_config(0.9, BoundingSampling::kUniform, 0.3);
  const auto result = beam_bound(pipeline, ground_set, 10, config);
  EXPECT_EQ(pipeline.counter("grow_selected"), result.included);
  EXPECT_EQ(pipeline.counter("shrink_discarded"), result.excluded);
}

}  // namespace
}  // namespace subsel::beam
