// End-to-end dataflow selection (beam_select_subset): bounding decisions
// identical to the in-memory pipeline, quality parity, stage accounting, and
// the memory budget across all stages.
#include "beam/beam_pipeline.h"

#include <gtest/gtest.h>

#include <set>

#include "../testing/test_instances.h"
#include "core/selection_pipeline.h"

namespace subsel::beam {
namespace {

using core::NodeId;
using subsel::testing::Instance;
using subsel::testing::random_instance;

core::SelectionPipelineConfig make_config(double alpha = 0.9) {
  core::SelectionPipelineConfig config;
  config.objective = core::ObjectiveParams::from_alpha(alpha);
  config.bounding.sampling = core::BoundingSampling::kUniform;
  config.bounding.sample_fraction = 0.3;
  config.greedy.num_machines = 8;
  config.greedy.num_rounds = 4;
  return config;
}

TEST(BeamPipeline, SelectsKUniquePointsAndScoresThem) {
  const Instance instance = random_instance(300, 5, 940);
  const auto ground_set = instance.ground_set();
  dataflow::Pipeline pipeline;
  const auto result = beam_select_subset(pipeline, ground_set, 30, make_config());
  EXPECT_EQ(result.selected.size(), 30u);
  std::set<NodeId> unique(result.selected.begin(), result.selected.end());
  EXPECT_EQ(unique.size(), 30u);

  core::PairwiseObjective objective(ground_set, core::ObjectiveParams::from_alpha(0.9));
  EXPECT_NEAR(result.objective, objective.evaluate(result.selected), 1e-9);
}

TEST(BeamPipeline, BoundingDecisionsMatchInMemoryPipeline) {
  const Instance instance = random_instance(200, 5, 941);
  const auto ground_set = instance.ground_set();
  dataflow::Pipeline pipeline;
  const auto config = make_config();

  const auto beam_result = beam_select_subset(pipeline, ground_set, 20, config);
  const auto core_result = core::select_subset(ground_set, 20, config);
  ASSERT_TRUE(beam_result.bounding.has_value());
  ASSERT_TRUE(core_result.bounding.has_value());
  EXPECT_EQ(beam_result.bounding->state.selected_ids(),
            core_result.bounding->state.selected_ids());
  EXPECT_EQ(beam_result.bounding->included, core_result.bounding->included);
  EXPECT_EQ(beam_result.bounding->excluded, core_result.bounding->excluded);
}

TEST(BeamPipeline, QualityParityWithInMemoryPipeline) {
  const Instance instance = random_instance(400, 6, 942);
  const auto ground_set = instance.ground_set();
  double beam_total = 0.0, core_total = 0.0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    auto config = make_config();
    config.greedy.seed = seed;
    dataflow::Pipeline pipeline;
    beam_total += beam_select_subset(pipeline, ground_set, 40, config).objective;
    core_total += core::select_subset(ground_set, 40, config).objective;
  }
  EXPECT_NEAR(beam_total / core_total, 1.0, 0.05);
}

TEST(BeamPipeline, CompleteBoundingSkipsGreedy) {
  // Isolated points: bounding solves the instance, greedy must not run.
  Instance instance;
  instance.graph =
      graph::SimilarityGraph::from_lists(std::vector<graph::NeighborList>(30));
  instance.utilities.resize(30);
  for (std::size_t i = 0; i < 30; ++i) instance.utilities[i] = static_cast<double>(i);
  const auto ground_set = instance.ground_set();

  dataflow::Pipeline pipeline;
  auto config = make_config();
  config.bounding.sampling = core::BoundingSampling::kNone;
  const auto result = beam_select_subset(pipeline, ground_set, 5, config);
  ASSERT_TRUE(result.bounding.has_value());
  EXPECT_TRUE(result.bounding->complete());
  EXPECT_TRUE(result.greedy_rounds.empty());
  EXPECT_EQ(result.selected, (std::vector<NodeId>{25, 26, 27, 28, 29}));
}

TEST(BeamPipeline, DisabledBoundingRunsGreedyOnly) {
  const Instance instance = random_instance(150, 4, 943);
  const auto ground_set = instance.ground_set();
  dataflow::Pipeline pipeline;
  auto config = make_config();
  config.use_bounding = false;
  const auto result = beam_select_subset(pipeline, ground_set, 15, config);
  EXPECT_FALSE(result.bounding.has_value());
  EXPECT_FALSE(result.greedy_rounds.empty());
  EXPECT_EQ(result.selected.size(), 15u);
}

TEST(BeamPipeline, ExpiredDeadlineDegradesButStillSelectsK) {
  // Same contract as the in-memory pipeline: the bounding pre-pass stops at
  // a pass boundary, the greedy falls through to the final subsample, and
  // the caller still gets a valid size-k selection flagged degraded.
  const Instance instance = random_instance(200, 5, 945);
  const auto ground_set = instance.ground_set();
  dataflow::Pipeline pipeline;
  auto config = make_config();
  config.bounding.deadline = Deadline::after_ms(0);
  config.greedy.deadline = Deadline::after_ms(0);
  const auto result = beam_select_subset(pipeline, ground_set, 20, config);
  EXPECT_TRUE(result.degraded);
  EXPECT_FALSE(result.degraded_reason.empty());
  EXPECT_EQ(result.selected.size(), 20u);
  std::set<NodeId> unique(result.selected.begin(), result.selected.end());
  EXPECT_EQ(unique.size(), 20u);
}

TEST(BeamPipeline, RunsUnderWorkerMemoryBudget) {
  const Instance instance = random_instance(1500, 6, 944);
  const auto ground_set = instance.ground_set();
  dataflow::PipelineOptions options;
  options.num_shards = 64;
  options.worker_memory_bytes = 96 * 1024;
  dataflow::Pipeline pipeline(options);
  const auto result = beam_select_subset(pipeline, ground_set, 150, make_config());
  EXPECT_EQ(result.selected.size(), 150u);
  EXPECT_LE(pipeline.peak_shard_bytes(), 96u * 1024u);
}

}  // namespace
}  // namespace subsel::beam
