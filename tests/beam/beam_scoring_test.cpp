#include "beam/beam_scoring.h"

#include <gtest/gtest.h>

#include "../testing/test_instances.h"
#include "dataflow/transforms.h"

namespace subsel::beam {
namespace {

using subsel::testing::Instance;
using subsel::testing::random_instance;

dataflow::Pipeline make_pipeline(std::size_t shards = 8) {
  dataflow::PipelineOptions options;
  options.num_shards = shards;
  return dataflow::Pipeline(options);
}

TEST(BeamScore, MatchesDirectEvaluationOnHandInstance) {
  std::vector<graph::NeighborList> lists(3);
  lists[0].edges = {{1, 0.5f}};
  lists[1].edges = {{2, 0.25f}};
  Instance instance;
  instance.graph = graph::SimilarityGraph::from_lists(lists).symmetrized();
  instance.utilities = {1.0, 2.0, 3.0};
  const auto ground_set = instance.ground_set();
  auto pipeline = make_pipeline(4);
  const core::ObjectiveParams params{0.9, 0.1};

  EXPECT_NEAR(beam_score(pipeline, ground_set, std::vector<graph::NodeId>{0, 1}, params),
              0.9 * 3.0 - 0.1 * 0.5, 1e-9);
  EXPECT_NEAR(
      beam_score(pipeline, ground_set, std::vector<graph::NodeId>{0, 1, 2}, params),
      0.9 * 6.0 - 0.1 * 0.75, 1e-9);
  EXPECT_NEAR(beam_score(pipeline, ground_set, std::vector<graph::NodeId>{}, params),
              0.0, 1e-12);
}

class BeamScoreEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BeamScoreEquivalenceTest, MatchesPairwiseObjective) {
  const Instance instance = random_instance(120, 6, GetParam());
  const auto ground_set = instance.ground_set();
  auto pipeline = make_pipeline();

  Rng rng(GetParam() + 1);
  std::vector<graph::NodeId> subset;
  for (graph::NodeId v = 0; v < 120; ++v) {
    if (rng.bernoulli(0.4)) subset.push_back(v);
  }
  for (double alpha : {0.9, 0.5, 0.1}) {
    const auto params = core::ObjectiveParams::from_alpha(alpha);
    core::PairwiseObjective objective(ground_set, params);
    const double expected = objective.evaluate(subset);
    const double actual = beam_score(pipeline, ground_set, subset, params);
    EXPECT_NEAR(actual, expected, 1e-8 * (1.0 + std::abs(expected)));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, BeamScoreEquivalenceTest,
                         ::testing::Values(601, 602, 603, 604));

TEST(BeamScore, IsolatedSelectedPointsKeepUnaryTerms) {
  // Selected points with no selected neighbors must contribute their unary
  // term (regression guard for the join shape).
  Instance instance;
  instance.graph =
      graph::SimilarityGraph::from_lists(std::vector<graph::NeighborList>(5));
  instance.utilities = {1.0, 2.0, 3.0, 4.0, 5.0};
  const auto ground_set = instance.ground_set();
  auto pipeline = make_pipeline(4);
  const core::ObjectiveParams params{0.9, 0.1};
  EXPECT_NEAR(
      beam_score(pipeline, ground_set, std::vector<graph::NodeId>{1, 3}, params),
      0.9 * 6.0, 1e-9);
}

TEST(BeamScore, StateOverloadMatchesIdListOverload) {
  const Instance instance = random_instance(50, 4, 611);
  const auto ground_set = instance.ground_set();
  auto pipeline = make_pipeline();
  const core::ObjectiveParams params{0.9, 0.1};
  const std::vector<graph::NodeId> subset{1, 4, 9, 16, 25, 36, 49};
  core::SelectionState state(50);
  for (auto v : subset) state.select(v);
  EXPECT_DOUBLE_EQ(beam_score(pipeline, ground_set, state, params),
                   beam_score(pipeline, ground_set, subset, params));
}

}  // namespace
}  // namespace subsel::beam
