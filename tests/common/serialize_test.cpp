#include "common/serialize.h"

#include <gtest/gtest.h>

#include <filesystem>

namespace subsel {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "subsel_serialize_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(SerializeTest, RoundTripsPods) {
  const std::string file = path("pods.bin");
  {
    BinaryWriter writer(file);
    writer.write_pod<std::uint64_t>(0xdeadbeefULL);
    writer.write_pod<double>(3.25);
    writer.write_pod<std::int32_t>(-7);
    ASSERT_TRUE(writer.ok());
  }
  BinaryReader reader(file);
  EXPECT_EQ(reader.read_pod<std::uint64_t>(), 0xdeadbeefULL);
  EXPECT_EQ(reader.read_pod<double>(), 3.25);
  EXPECT_EQ(reader.read_pod<std::int32_t>(), -7);
}

TEST_F(SerializeTest, RoundTripsVectors) {
  const std::string file = path("vec.bin");
  const std::vector<float> floats{1.0f, -2.5f, 3.75f};
  const std::vector<std::int64_t> ints{10, -20, 30, 40};
  {
    BinaryWriter writer(file);
    writer.write_vector(floats);
    writer.write_vector(ints);
  }
  BinaryReader reader(file);
  EXPECT_EQ(reader.read_vector<float>(), floats);
  EXPECT_EQ(reader.read_vector<std::int64_t>(), ints);
}

TEST_F(SerializeTest, EmptyVectorRoundTrips) {
  const std::string file = path("empty.bin");
  {
    BinaryWriter writer(file);
    writer.write_vector(std::vector<double>{});
  }
  BinaryReader reader(file);
  EXPECT_TRUE(reader.read_vector<double>().empty());
}

TEST_F(SerializeTest, TruncatedReadThrows) {
  const std::string file = path("trunc.bin");
  {
    BinaryWriter writer(file);
    writer.write_pod<std::uint32_t>(1);
  }
  BinaryReader reader(file);
  EXPECT_THROW(reader.read_pod<std::uint64_t>(), std::runtime_error);
}

TEST_F(SerializeTest, MissingFileThrows) {
  EXPECT_THROW(BinaryReader reader(path("missing.bin")), std::runtime_error);
}

}  // namespace
}  // namespace subsel
