// Failpoint framework: spec parsing, deterministic schedules, the two site
// flavors, stats accounting, and the disabled-path contract.
#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace subsel::failpoint {
namespace {

/// Every test leaves the process disarmed — other suites in this binary run
/// with the zero-cost path.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { disarm_all(); }
  void TearDown() override { disarm_all(); }

  static std::uint64_t fires_of(const char* site, int hits) {
    std::uint64_t fires = 0;
    for (int i = 0; i < hits; ++i) {
      if (SUBSEL_FAILPOINT_TRIGGERED(site)) ++fires;
    }
    return fires;
  }
};

TEST_F(FailpointTest, DisarmedByDefault) {
  EXPECT_FALSE(armed());
  EXPECT_FALSE(SUBSEL_FAILPOINT_TRIGGERED("test.any"));
  EXPECT_NO_THROW(SUBSEL_FAILPOINT("test.any"));
}

TEST_F(FailpointTest, NthFiresExactlyOnce) {
  arm_from_spec("test.site=nth(3)");
  EXPECT_TRUE(armed());
  EXPECT_FALSE(SUBSEL_FAILPOINT_TRIGGERED("test.site"));  // hit 1
  EXPECT_FALSE(SUBSEL_FAILPOINT_TRIGGERED("test.site"));  // hit 2
  EXPECT_TRUE(SUBSEL_FAILPOINT_TRIGGERED("test.site"));   // hit 3: fires
  EXPECT_FALSE(SUBSEL_FAILPOINT_TRIGGERED("test.site"));  // hit 4
  EXPECT_FALSE(SUBSEL_FAILPOINT_TRIGGERED("test.site"));  // never again
}

TEST_F(FailpointTest, EveryFiresPeriodically) {
  arm_from_spec("test.site=every(4)");
  EXPECT_EQ(fires_of("test.site", 12), 3u);  // hits 4, 8, 12
}

TEST_F(FailpointTest, ThrowingFlavorCarriesSiteName) {
  arm_from_spec("test.throw=nth(1)");
  try {
    SUBSEL_FAILPOINT("test.throw");
    FAIL() << "expected FailpointError";
  } catch (const FailpointError& e) {
    EXPECT_EQ(e.site(), "test.throw");
  }
}

TEST_F(FailpointTest, ProbScheduleIsDeterministicAcrossReplays) {
  arm_from_spec("test.prob=prob(0.3,99)");
  std::vector<bool> first;
  for (int i = 0; i < 200; ++i) {
    first.push_back(SUBSEL_FAILPOINT_TRIGGERED("test.prob"));
  }
  // Re-arming the same spec resets the hit counter: identical schedule.
  arm_from_spec("test.prob=prob(0.3,99)");
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(SUBSEL_FAILPOINT_TRIGGERED("test.prob"), first[i]) << "hit " << i;
  }
}

TEST_F(FailpointTest, ProbRateIsRoughlyHonored) {
  arm_from_spec("test.prob=prob(0.5,7)");
  const std::uint64_t fires = fires_of("test.prob", 1000);
  EXPECT_GT(fires, 400u);
  EXPECT_LT(fires, 600u);
}

TEST_F(FailpointTest, DifferentSeedsGiveDifferentSchedules) {
  arm_from_spec("test.prob=prob(0.5,1)");
  const std::uint64_t a = fires_of("test.prob", 64);
  std::vector<bool> schedule_a;
  arm_from_spec("test.prob=prob(0.5,1)");
  for (int i = 0; i < 64; ++i) {
    schedule_a.push_back(SUBSEL_FAILPOINT_TRIGGERED("test.prob"));
  }
  arm_from_spec("test.prob=prob(0.5,2)");
  bool any_difference = false;
  for (int i = 0; i < 64; ++i) {
    if (SUBSEL_FAILPOINT_TRIGGERED("test.prob") != schedule_a[i]) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
  (void)a;
}

TEST_F(FailpointTest, OffModeAndDisarmStopFiring) {
  arm_from_spec("test.site=every(1)");
  EXPECT_TRUE(SUBSEL_FAILPOINT_TRIGGERED("test.site"));
  arm_from_spec("test.site=off");
  EXPECT_FALSE(armed());  // the only site is off again
  EXPECT_FALSE(SUBSEL_FAILPOINT_TRIGGERED("test.site"));

  arm_from_spec("test.site=every(1)");
  disarm_all();
  EXPECT_FALSE(armed());
}

TEST_F(FailpointTest, MultiSiteSpecArmsIndependentSchedules) {
  arm_from_spec("a=nth(1);b=every(2)");
  EXPECT_TRUE(SUBSEL_FAILPOINT_TRIGGERED("a"));
  EXPECT_FALSE(SUBSEL_FAILPOINT_TRIGGERED("a"));
  EXPECT_FALSE(SUBSEL_FAILPOINT_TRIGGERED("b"));
  EXPECT_TRUE(SUBSEL_FAILPOINT_TRIGGERED("b"));
}

TEST_F(FailpointTest, StatsCountHitsAndFires) {
  arm_from_spec("test.site=every(2)");
  fires_of("test.site", 10);
  bool found = false;
  for (const SiteStats& s : stats()) {
    if (s.site != "test.site") continue;
    found = true;
    EXPECT_EQ(s.hits, 10u);
    EXPECT_EQ(s.fires, 5u);
  }
  EXPECT_TRUE(found);
}

TEST_F(FailpointTest, DelayModeSleepsButNeverFails) {
  arm_from_spec("test.delay=delay(1)");
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(SUBSEL_FAILPOINT_TRIGGERED("test.delay"));
  }
}

TEST_F(FailpointTest, MalformedSpecsAreRejectedWithoutArming) {
  EXPECT_THROW(arm_from_spec("test.site"), std::invalid_argument);
  EXPECT_THROW(arm_from_spec("test.site=bogus(1)"), std::invalid_argument);
  EXPECT_THROW(arm_from_spec("test.site=nth()"), std::invalid_argument);
  EXPECT_THROW(arm_from_spec("test.site=nth(0)"), std::invalid_argument);
  EXPECT_THROW(arm_from_spec("test.site=prob(1.5)"), std::invalid_argument);
  EXPECT_THROW(arm_from_spec("=nth(1)"), std::invalid_argument);
  // A malformed tail must not half-arm the valid head.
  EXPECT_THROW(arm_from_spec("good=nth(1);bad=wat"), std::invalid_argument);
  EXPECT_FALSE(armed());
  EXPECT_FALSE(SUBSEL_FAILPOINT_TRIGGERED("good"));
}

}  // namespace
}  // namespace subsel::failpoint
