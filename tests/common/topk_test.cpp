#include "common/topk.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "common/rng.h"

namespace subsel {
namespace {

TEST(KthLargest, SimpleCases) {
  const std::vector<double> values{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_EQ(kth_largest(values, 1), 5.0);
  EXPECT_EQ(kth_largest(values, 2), 4.0);
  EXPECT_EQ(kth_largest(values, 5), 1.0);
}

TEST(KthLargest, KZeroIsPlusInfinity) {
  const std::vector<double> values{1.0, 2.0};
  EXPECT_EQ(kth_largest(values, 0), std::numeric_limits<double>::infinity());
}

TEST(KthLargest, KBeyondSizeIsMinusInfinity) {
  const std::vector<double> values{1.0, 2.0};
  EXPECT_EQ(kth_largest(values, 3), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(kth_largest({}, 1), -std::numeric_limits<double>::infinity());
}

TEST(KthLargest, HandlesDuplicates) {
  const std::vector<double> values{2.0, 2.0, 2.0, 1.0};
  EXPECT_EQ(kth_largest(values, 1), 2.0);
  EXPECT_EQ(kth_largest(values, 3), 2.0);
  EXPECT_EQ(kth_largest(values, 4), 1.0);
}

TEST(KthLargest, DoesNotMutateInput) {
  const std::vector<double> values{3.0, 1.0, 2.0};
  const std::vector<double> copy = values;
  (void)kth_largest(values, 2);
  EXPECT_EQ(values, copy);
}

TEST(KthLargest, MatchesSortOnRandomInput) {
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> values(200);
    for (double& v : values) v = rng.uniform(-10, 10);
    std::vector<double> sorted = values;
    std::sort(sorted.begin(), sorted.end(), std::greater<>());
    for (std::size_t k = 1; k <= values.size(); k += 17) {
      EXPECT_EQ(kth_largest(values, k), sorted[k - 1]);
    }
  }
}

TEST(TopKIndices, ReturnsDescendingValues) {
  const std::vector<double> values{1.0, 9.0, 3.0, 7.0};
  const auto top = top_k_indices(values, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 1u);
  EXPECT_EQ(top[1], 3u);
}

TEST(TopKIndices, TieBreaksOnLowerIndex) {
  const std::vector<double> values{5.0, 5.0, 5.0};
  const auto top = top_k_indices(values, 2);
  EXPECT_EQ(top[0], 0u);
  EXPECT_EQ(top[1], 1u);
}

TEST(TopKIndices, CapsAtSize) {
  const std::vector<double> values{1.0, 2.0};
  EXPECT_EQ(top_k_indices(values, 10).size(), 2u);
}

}  // namespace
}  // namespace subsel
