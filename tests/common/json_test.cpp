// JsonWriter: comma/nesting bookkeeping, string escaping, numeric formats.
#include "common/json.h"

#include <gtest/gtest.h>

#include <limits>

namespace subsel {
namespace {

TEST(JsonWriter, EmptyObjectAndArray) {
  {
    JsonWriter json;
    json.begin_object().end_object();
    EXPECT_EQ(json.str(), "{}");
  }
  {
    JsonWriter json;
    json.begin_array().end_array();
    EXPECT_EQ(json.str(), "[]");
  }
}

TEST(JsonWriter, CommasBetweenSiblingsButNotAfterKeys) {
  JsonWriter json;
  json.begin_object();
  json.key("a").value(1);
  json.key("b").value("two");
  json.key("c").begin_array();
  json.value(1).value(2).value(3);
  json.end_array();
  json.key("d").begin_object();
  json.key("nested").value(true);
  json.end_object();
  json.end_object();
  EXPECT_EQ(json.str(),
            "{\"a\":1,\"b\":\"two\",\"c\":[1,2,3],\"d\":{\"nested\":true}}");
}

TEST(JsonWriter, EscapesStrings) {
  JsonWriter json;
  json.begin_object();
  json.key("text").value("quote\" slash\\ newline\n tab\t bell\x07");
  json.end_object();
  EXPECT_EQ(json.str(),
            "{\"text\":\"quote\\\" slash\\\\ newline\\n tab\\t bell\\u0007\"}");
}

TEST(JsonWriter, NumbersRoundTripAndNonFiniteBecomesNull) {
  JsonWriter json;
  json.begin_array();
  json.value(0.5);
  json.value(std::size_t{18446744073709551615ull});
  json.value(-7);
  json.value(std::numeric_limits<double>::infinity());
  json.value(std::numeric_limits<double>::quiet_NaN());
  json.end_array();
  EXPECT_EQ(json.str(), "[0.5,18446744073709551615,-7,null,null]");
}

TEST(JsonWriter, ArrayOfObjects) {
  JsonWriter json;
  json.begin_array();
  for (int i = 0; i < 2; ++i) {
    json.begin_object();
    json.key("i").value(i);
    json.end_object();
  }
  json.end_array();
  EXPECT_EQ(json.str(), "[{\"i\":0},{\"i\":1}]");
}

}  // namespace
}  // namespace subsel
