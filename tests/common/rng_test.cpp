#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <set>
#include <vector>

namespace subsel {
namespace {

TEST(SplitMix64, IsDeterministic) {
  EXPECT_EQ(splitmix64(0), splitmix64(0));
  EXPECT_EQ(splitmix64(12345), splitmix64(12345));
  EXPECT_NE(splitmix64(1), splitmix64(2));
}

TEST(SplitMix64, ConsecutiveInputsDecorrelate) {
  // Hamming distance between hashes of consecutive inputs should be near 32.
  int total_bits = 0;
  for (std::uint64_t i = 0; i < 100; ++i) {
    total_bits += std::popcount(splitmix64(i) ^ splitmix64(i + 1));
  }
  EXPECT_GT(total_bits / 100.0, 20.0);
  EXPECT_LT(total_bits / 100.0, 44.0);
}

TEST(HashToUnit, RangeIsHalfOpen) {
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const double u = hash_to_unit(splitmix64(i));
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, SameSeedSameStream) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a(7), b(8);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Rng, UniformIndexCoversRangeUniformly) {
  Rng rng(11);
  std::array<int, 10> counts{};
  for (int i = 0; i < 100'000; ++i) {
    const auto index = rng.uniform_index(10);
    ASSERT_LT(index, 10u);
    ++counts[index];
  }
  for (int count : counts) {
    EXPECT_NEAR(count, 10'000, 500);
  }
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(5);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(9);
  std::vector<int> values(100);
  for (int i = 0; i < 100; ++i) values[i] = i;
  rng.shuffle(std::span<int>(values));
  std::vector<int> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
  // Overwhelmingly unlikely to be the identity.
  bool identity = true;
  for (int i = 0; i < 100; ++i) identity &= (values[i] == i);
  EXPECT_FALSE(identity);
}

TEST(Rng, SampleWithoutReplacementIsDistinct) {
  Rng rng(13);
  const auto sample = rng.sample_without_replacement(1000, 100);
  EXPECT_EQ(sample.size(), 100u);
  std::set<std::uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 100u);
  for (std::uint64_t v : sample) EXPECT_LT(v, 1000u);
}

TEST(Rng, SampleWithoutReplacementCapsAtPopulation) {
  Rng rng(13);
  const auto sample = rng.sample_without_replacement(5, 100);
  EXPECT_EQ(sample.size(), 5u);
}

TEST(Rng, SampleWithoutReplacementIsUnbiased) {
  // Every element of [0, 20) should appear in a 10-element sample about half
  // the time.
  std::array<int, 20> counts{};
  for (std::uint64_t trial = 0; trial < 4000; ++trial) {
    Rng rng(trial);
    for (std::uint64_t v : rng.sample_without_replacement(20, 10)) ++counts[v];
  }
  for (int count : counts) EXPECT_NEAR(count, 2000, 200);
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng parent(21);
  Rng child_a = parent.fork(1);
  Rng child_b = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (child_a() == child_b());
  EXPECT_LT(equal, 3);
  // Forking is deterministic.
  Rng parent2(21);
  Rng child_a2 = parent2.fork(1);
  Rng child_a3 = Rng(21).fork(1);
  EXPECT_EQ(child_a2(), child_a3());
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10'000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits, 3000, 200);
}

}  // namespace
}  // namespace subsel
