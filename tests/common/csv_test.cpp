#include "common/csv.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

namespace subsel {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "subsel_csv_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  const std::string path = (dir_ / "out.csv").string();
  {
    CsvWriter writer(path, {"a", "b", "c"});
    writer.row(1, 2.5, "x");
    writer.row(3, 4.5, "y");
  }
  EXPECT_EQ(read_file(path), "a,b,c\n1,2.5,x\n3,4.5,y\n");
}

TEST_F(CsvTest, QuotesFieldsWithSeparators) {
  const std::string path = (dir_ / "quoted.csv").string();
  {
    CsvWriter writer(path, {"v"});
    writer.row("hello,world");
    writer.row("say \"hi\"");
  }
  EXPECT_EQ(read_file(path), "v\n\"hello,world\"\n\"say \"\"hi\"\"\"\n");
}

TEST_F(CsvTest, EnsureDirectoryCreatesNestedPath) {
  const auto nested = dir_ / "x" / "y" / "z";
  EXPECT_TRUE(ensure_directory(nested.string()));
  EXPECT_TRUE(std::filesystem::is_directory(nested));
  // Idempotent.
  EXPECT_TRUE(ensure_directory(nested.string()));
}

}  // namespace
}  // namespace subsel
