#include "common/stats.h"

#include <gtest/gtest.h>

namespace subsel {
namespace {

TEST(RunningStats, EmptyStats) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats stats;
  stats.add(5.0);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_EQ(stats.mean(), 5.0);
  EXPECT_EQ(stats.min(), 5.0);
  EXPECT_EQ(stats.max(), 5.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(v);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(stats.min(), 2.0);
  EXPECT_EQ(stats.max(), 9.0);
}

TEST(RunningStats, NumericallyStableForLargeOffsets) {
  RunningStats stats;
  for (int i = 0; i < 1000; ++i) stats.add(1e9 + (i % 2));
  EXPECT_NEAR(stats.mean(), 1e9 + 0.5, 1e-3);
  EXPECT_NEAR(stats.variance(), 0.25, 0.01);
}

}  // namespace
}  // namespace subsel
