#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/failpoint.h"

namespace subsel {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto future = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexOnce) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> visits(10'000);
  pool.parallel_for(10'000, [&](std::size_t i) { visits[i].fetch_add(1); });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPool, ParallelForZeroCountIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [](std::size_t i) {
                          if (i == 57) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ParallelForComputesCorrectSum) {
  ThreadPool pool(6);
  std::vector<long> values(100'000);
  pool.parallel_for(values.size(),
                    [&](std::size_t i) { values[i] = static_cast<long>(i); });
  const long sum = std::accumulate(values.begin(), values.end(), 0L);
  EXPECT_EQ(sum, 100'000L * 99'999L / 2);
}

TEST(ThreadPool, RunPerWorkerTouchesEachWorkerSlot) {
  ThreadPool pool(5);
  std::vector<std::atomic<int>> visits(5);
  pool.run_per_worker([&](std::size_t w) { visits[w].fetch_add(1); });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPool, GlobalPoolIsUsable) {
  std::atomic<int> counter{0};
  global_thread_pool().parallel_for(100, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, NestedSubmissionDoesNotDeadlock) {
  ThreadPool pool(2);
  auto outer = pool.submit([&pool] {
    // Inner work is executed by parallel_for's caller participation even if
    // all workers are busy.
    std::atomic<int> c{0};
    return c.load();
  });
  EXPECT_EQ(outer.get(), 0);
}

TEST(ThreadPool, RunPerWorkerWrapsFailuresInTaskError) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  try {
    pool.run_per_worker([&](std::size_t w) {
      if (w == 1) throw std::logic_error("worker 1 exploded");
      completed.fetch_add(1);
    });
    FAIL() << "expected TaskError";
  } catch (const TaskError& e) {
    EXPECT_NE(std::string(e.what()).find("worker 1 exploded"), std::string::npos);
    EXPECT_THROW(e.rethrow_cause(), std::logic_error);
  }
  // The failure must not have torn down the other workers' tasks: all three
  // healthy slots ran to completion before the join rethrew.
  EXPECT_EQ(completed.load(), 3);
  // ...and the pool is still alive for later work.
  std::atomic<int> counter{0};
  pool.parallel_for(64, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, SubmitDispatchFaultLandsInFutureNotTerminate) {
  failpoint::disarm_all();
  failpoint::arm_from_spec("pool.task=nth(1)");
  ThreadPool pool(2);
  auto poisoned = pool.submit([] { return 7; });
  EXPECT_THROW(poisoned.get(), failpoint::FailpointError);
  // Only the first dispatch was poisoned; the pool keeps serving.
  auto healthy = pool.submit([] { return 8; });
  EXPECT_EQ(healthy.get(), 8);
  failpoint::disarm_all();
}

TEST(ThreadPool, ParallelForSurvivesInjectedDispatchFaults) {
  // Dispatch faults on every 3rd pool task: parallel_for must neither hang
  // nor terminate, and must surface a typed error while every in-flight
  // chunk drains (the wait-all contract keeps the chunk callable borrowed
  // until the last task returns).
  failpoint::disarm_all();
  failpoint::arm_from_spec("pool.task=every(3)");
  ThreadPool pool(4);
  bool threw = false;
  try {
    std::atomic<int> visits{0};
    pool.parallel_for(1000, [&](std::size_t) { visits.fetch_add(1); });
  } catch (const std::exception&) {
    threw = true;
  }
  EXPECT_TRUE(threw);
  failpoint::disarm_all();
  // Pool intact afterwards.
  std::atomic<int> counter{0};
  pool.parallel_for(100, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 100);
}

}  // namespace
}  // namespace subsel
