// SelectionServer behavior: the full request lifecycle (complete, degraded
// mid-solve, degraded-in-queue, rejected, error), deadline accounting from
// admission, load shedding, graceful drain, per-server counters, response
// schema, and the serve.* failpoint contract — a mid-request injected fault
// yields a typed error response while the daemon keeps serving.
#include "serve/server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "data/datasets.h"
#include "graph/ground_set.h"

namespace subsel::serve {
namespace {

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::disarm_all(); }
  void TearDown() override { failpoint::disarm_all(); }

  /// One resident toy dataset, shared by every test (read-only).
  static const data::Dataset& dataset() {
    static const data::Dataset shared = data::toy_dataset(2000, 8, 42);
    return shared;
  }

  static const graph::InMemoryGroundSet& ground_set() {
    static const graph::InMemoryGroundSet shared(dataset().graph,
                                                 dataset().utilities);
    return shared;
  }

  static std::unique_ptr<SelectionServer> make_server(
      std::size_t max_concurrent = 2, std::size_t queue_capacity = 64) {
    ServerConfig config;
    config.max_concurrent = max_concurrent;
    config.queue_capacity = queue_capacity;
    auto server = std::make_unique<SelectionServer>(config);
    server->register_ground_set("toy", &ground_set());
    return server;
  }

  static ServeRequest select_request(const std::string& id, std::size_t k = 100) {
    ServeRequest request;
    request.id = id;
    request.dataset = "toy";
    request.k = k;
    return request;
  }
};

TEST_F(ServeTest, CompletesAndEchoesTheRequest) {
  auto server = make_server();
  auto response = server->submit(select_request("r1")).get();
  EXPECT_EQ(response.id, "r1");
  EXPECT_EQ(response.status, ServeResponse::Status::kComplete);
  EXPECT_EQ(response.dataset, "toy");
  EXPECT_EQ(response.solver, "distributed-greedy");
  EXPECT_EQ(response.selected.size(), 100u);
  EXPECT_EQ(response.selected_count, 100u);
  EXPECT_GT(response.objective, 0.0);
  EXPECT_GT(response.latency.total_seconds, 0.0);
  EXPECT_GE(response.latency.total_seconds,
            response.latency.solve_seconds);
  EXPECT_EQ(response.counters.accepted, 1u);
  EXPECT_EQ(response.counters.completed, 1u);
}

TEST_F(ServeTest, ResponseJsonCarriesSchemaAndVersion) {
  auto server = make_server();
  const auto response = server->submit(select_request("r1", 10)).get();
  const std::string json = response.to_json();
  EXPECT_NE(json.find("\"schema\":\"subsel.serve_response.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"status\":\"complete\""), std::string::npos);
  EXPECT_NE(json.find("\"server\":{"), std::string::npos);
  EXPECT_NE(json.find("\"latency\":{"), std::string::npos);
}

TEST_F(ServeTest, IdenticalRequestsYieldBitIdenticalSelections) {
  auto server = make_server();
  const auto first = server->submit(select_request("a", 150)).get();
  const auto second = server->submit(select_request("b", 150)).get();
  ASSERT_EQ(first.status, ServeResponse::Status::kComplete);
  ASSERT_EQ(second.status, ServeResponse::Status::kComplete);
  EXPECT_EQ(first.selected, second.selected);
  EXPECT_DOUBLE_EQ(first.objective, second.objective);
}

TEST_F(ServeTest, DeadlineExpiringMidSolveDegradesWithValidSelection) {
  auto server = make_server();
  auto request = select_request("tight", 500);
  request.deadline_ms = 1;  // expires inside the solve on any machine
  const auto response = server->submit(std::move(request)).get();
  EXPECT_EQ(response.status, ServeResponse::Status::kDegraded);
  // Either the solver degraded mid-run or the budget was gone by dispatch;
  // both are the deadline contract, and both return a VALID selection.
  EXPECT_TRUE(response.reason == "deadline_expired" ||
              response.reason == "queued_past_deadline")
      << response.reason;
  EXPECT_EQ(response.selected.size(), response.selected_count);
  EXPECT_EQ(response.counters.degraded, 1u);
}

TEST_F(ServeTest, RequestExpiringInQueueDegradesWithoutSolving) {
  // One slot: a slow request holds it while a 1 ms-deadline request waits
  // in the queue past its whole budget.
  auto server = make_server(/*max_concurrent=*/1);
  auto slow = server->submit(select_request("slow", 600));

  auto tight = select_request("tight", 10);
  tight.deadline_ms = 1;
  const auto response = server->submit(std::move(tight)).get();
  EXPECT_EQ(response.status, ServeResponse::Status::kDegraded);
  EXPECT_EQ(response.reason, "queued_past_deadline");
  EXPECT_EQ(response.counters.expired_in_queue, 1u);
  // It never held a solver slot, so there is no solve time to report.
  EXPECT_DOUBLE_EQ(response.latency.solve_seconds, 0.0);
  EXPECT_EQ(slow.get().status, ServeResponse::Status::kComplete);
}

TEST_F(ServeTest, UnknownDatasetRejectsWithKnownList) {
  auto server = make_server();
  auto request = select_request("r1");
  request.dataset = "nonexistent";
  const auto response = server->submit(std::move(request)).get();
  EXPECT_EQ(response.status, ServeResponse::Status::kRejected);
  EXPECT_EQ(response.reason, "unknown_dataset");
  EXPECT_NE(response.detail.find("toy"), std::string::npos);
  EXPECT_EQ(response.counters.rejected, 1u);
  EXPECT_EQ(response.counters.accepted, 0u);
}

TEST_F(ServeTest, OverloadShedsWithQueueFull) {
  // One slot + capacity-1 queue. Occupy the slot (poll inflight so the
  // ordering is deterministic), fill the queue, then overflow it.
  auto server = make_server(/*max_concurrent=*/1, /*queue_capacity=*/1);
  auto slow = server->submit(select_request("slow", 600));
  for (int i = 0; i < 2000 && server->counters().inflight == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  ASSERT_EQ(server->counters().inflight, 1u);

  auto queued = server->submit(select_request("queued", 10));
  const auto shed = server->submit(select_request("shed", 10)).get();
  EXPECT_EQ(shed.status, ServeResponse::Status::kRejected);
  EXPECT_EQ(shed.reason, "queue_full");
  EXPECT_NE(shed.detail.find("capacity"), std::string::npos);

  EXPECT_EQ(slow.get().status, ServeResponse::Status::kComplete);
  EXPECT_EQ(queued.get().status, ServeResponse::Status::kComplete);
  const auto counters = server->counters();
  EXPECT_EQ(counters.accepted, 2u);
  EXPECT_EQ(counters.rejected, 1u);
  EXPECT_EQ(counters.completed, 2u);
}

TEST_F(ServeTest, DrainRejectsNewWorkAndFinishesBacklog) {
  auto server = make_server(/*max_concurrent=*/1);
  auto inflight = server->submit(select_request("inflight", 400));
  server->begin_drain();

  const auto late = server->submit(select_request("late", 10)).get();
  EXPECT_EQ(late.status, ServeResponse::Status::kRejected);
  EXPECT_EQ(late.reason, "draining");

  // Work admitted before the pivot still completes.
  EXPECT_EQ(inflight.get().status, ServeResponse::Status::kComplete);
  server->shutdown();
  EXPECT_EQ(server->counters().queue_depth, 0u);
  EXPECT_EQ(server->counters().inflight, 0u);
}

TEST_F(ServeTest, StatsReportsResidentDatasetsAndCounters) {
  auto server = make_server();
  ASSERT_EQ(server->submit(select_request("warm", 50)).get().status,
            ServeResponse::Status::kComplete);

  ServeRequest stats;
  stats.kind = ServeRequest::Kind::kStats;
  stats.id = "s1";
  const auto response = server->submit(std::move(stats)).get();
  EXPECT_EQ(response.status, ServeResponse::Status::kStats);
  EXPECT_STREQ(response.status_name(), "ok");
  ASSERT_EQ(response.datasets.size(), 1u);
  EXPECT_EQ(response.datasets[0].name, "toy");
  EXPECT_EQ(response.datasets[0].num_points, ground_set().num_points());
  EXPECT_FALSE(response.datasets[0].disk);
  EXPECT_GT(response.uptime_seconds, 0.0);
  EXPECT_EQ(response.counters.accepted, 1u);
  EXPECT_EQ(response.counters.completed, 1u);
}

TEST_F(ServeTest, PriorityClassesAreCountedSeparately) {
  auto server = make_server();
  auto interactive = select_request("i1", 50);
  interactive.priority = Priority::kInteractive;
  auto batch = select_request("b1", 50);
  batch.priority = Priority::kBatch;
  ASSERT_EQ(server->submit(std::move(interactive)).get().status,
            ServeResponse::Status::kComplete);
  ASSERT_EQ(server->submit(std::move(batch)).get().status,
            ServeResponse::Status::kComplete);
  const auto counters = server->counters();
  EXPECT_EQ(counters.completed_by_class[static_cast<std::size_t>(
                Priority::kInteractive)],
            1u);
  EXPECT_EQ(counters.completed_by_class[static_cast<std::size_t>(
                Priority::kBatch)],
            1u);
}

TEST_F(ServeTest, InvalidRequestIsTypedErrorNotCrash) {
  auto server = make_server();
  // k beyond the ground set fails the registry's validation post-admission.
  const auto response =
      server->submit(select_request("too-big", 1u << 20)).get();
  EXPECT_EQ(response.status, ServeResponse::Status::kError);
  EXPECT_EQ(response.reason, "invalid_request");
  EXPECT_EQ(response.counters.errors, 1u);
  // The daemon is still serving.
  EXPECT_EQ(server->submit(select_request("after", 10)).get().status,
            ServeResponse::Status::kComplete);
}

// --- fault injection at the serve.* sites -------------------------------

TEST_F(ServeTest, FaultAtAcceptIsTypedErrorAndServerKeepsServing) {
  auto server = make_server();
  failpoint::arm_from_spec("serve.accept=nth(1)");
  const auto faulted = server->submit(select_request("faulted", 50)).get();
  EXPECT_EQ(faulted.status, ServeResponse::Status::kError);
  EXPECT_EQ(faulted.reason, "injected_fault");
  EXPECT_NE(faulted.detail.find("serve.accept"), std::string::npos);

  const auto next = server->submit(select_request("next", 50)).get();
  EXPECT_EQ(next.status, ServeResponse::Status::kComplete);
  const auto counters = server->counters();
  EXPECT_EQ(counters.errors, 1u);
  EXPECT_EQ(counters.completed, 1u);
}

TEST_F(ServeTest, FaultAtEnqueueIsTypedErrorAndServerKeepsServing) {
  auto server = make_server();
  failpoint::arm_from_spec("serve.enqueue=nth(1)");
  const auto faulted = server->submit(select_request("faulted", 50)).get();
  EXPECT_EQ(faulted.status, ServeResponse::Status::kError);
  EXPECT_EQ(faulted.reason, "injected_fault");
  EXPECT_NE(faulted.detail.find("serve.enqueue"), std::string::npos);
  EXPECT_EQ(server->submit(select_request("next", 50)).get().status,
            ServeResponse::Status::kComplete);
}

TEST_F(ServeTest, FaultAtRespondReplacesPayloadButCountsOnce) {
  auto server = make_server();
  failpoint::arm_from_spec("serve.respond=nth(1)");
  const auto faulted = server->submit(select_request("faulted", 50)).get();
  EXPECT_EQ(faulted.status, ServeResponse::Status::kError);
  EXPECT_EQ(faulted.reason, "injected_fault");
  EXPECT_EQ(faulted.id, "faulted");  // identity survives the fault
  EXPECT_TRUE(faulted.selected.empty());  // payload does not

  const auto next = server->submit(select_request("next", 50)).get();
  EXPECT_EQ(next.status, ServeResponse::Status::kComplete);
  // Exactly one outcome counter moved per request: the faulted one counted
  // as an error, never ALSO as completed.
  const auto counters = server->counters();
  EXPECT_EQ(counters.errors, 1u);
  EXPECT_EQ(counters.completed, 1u);
  EXPECT_EQ(counters.accepted, 2u);
}

TEST_F(ServeTest, MidSolveWorkerFaultIsTypedErrorAndServerRecovers) {
  auto server = make_server();
  // A fault INSIDE the solve (thread-pool task) surfaces as a typed
  // worker_fault/injected_fault response, not a dead dispatcher.
  failpoint::arm_from_spec("pool.task=nth(1)");
  const auto faulted = server->submit(select_request("faulted", 200)).get();
  EXPECT_EQ(faulted.status, ServeResponse::Status::kError);
  EXPECT_TRUE(faulted.reason == "worker_fault" ||
              faulted.reason == "injected_fault")
      << faulted.reason;
  failpoint::disarm_all();
  EXPECT_EQ(server->submit(select_request("next", 50)).get().status,
            ServeResponse::Status::kComplete);
}

}  // namespace
}  // namespace subsel::serve
