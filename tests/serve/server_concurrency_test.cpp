// Many concurrent clients against ONE resident disk-backed ground set: the
// acceptance gate of the serving subsystem (and a TSan target in CI). N
// client threads hammer the daemon with overlapping deadline-carrying
// requests; every response must be complete or degraded (never an error,
// never a lost callback), identical requests must return bit-identical
// selections even when their solves interleaved on the shared block cache,
// and the per-request DiskCacheStats deltas must stay physically plausible.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "data/dataset_io.h"
#include "data/datasets.h"
#include "serve/server.h"

namespace subsel::serve {
namespace {

constexpr std::size_t kClientThreads = 8;
constexpr std::size_t kRequestsPerThread = 6;

class ServeConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "subsel_serve_conc_test";
    std::filesystem::create_directories(dir_);
    const auto dataset = data::toy_dataset(3000, 10, 77);
    prefix_ = (dir_ / "toy").string();
    data::save_dataset(dataset, prefix_);
  }

  void TearDown() override {
    std::error_code ignored;
    std::filesystem::remove_all(dir_, ignored);
  }

  std::unique_ptr<SelectionServer> make_disk_server() {
    ServerConfig config;
    DatasetSpec spec;
    spec.name = "toy";
    spec.path = prefix_;
    spec.disk = true;
    // A cache far smaller than the graph so concurrent solves genuinely
    // contend: evictions, demand misses, and prefetch races all happen.
    spec.cache.block_edges = 512;
    spec.cache.max_cached_blocks = 8;
    spec.cache.num_shards = 4;
    config.datasets.push_back(spec);
    config.max_concurrent = 4;
    config.queue_capacity = 256;
    return std::make_unique<SelectionServer>(config);
  }

  std::filesystem::path dir_;
  std::string prefix_;
};

TEST_F(ServeConcurrencyTest, EightClientsOneResidentDiskGroundSet) {
  auto server = make_disk_server();

  std::mutex mutex;
  std::vector<ServeResponse> responses;
  std::vector<ServeResponse> canonical;  // the identical-request cohort
  std::atomic<std::size_t> callbacks{0};

  std::vector<std::thread> clients;
  clients.reserve(kClientThreads);
  for (std::size_t t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&, t] {
      for (std::size_t r = 0; r < kRequestsPerThread; ++r) {
        ServeRequest request;
        request.id = "c" + std::to_string(t) + "-" + std::to_string(r);
        request.dataset = "toy";
        request.priority =
            (t + r) % 2 == 0 ? Priority::kInteractive : Priority::kBatch;
        const bool is_canonical = r % 3 == 0;
        if (is_canonical) {
          // Every thread's canonical request is IDENTICAL (same k, seed,
          // solver, no deadline): selections must match bit-for-bit no
          // matter how the solves interleaved.
          request.k = 120;
          request.seed = 23;
        } else {
          request.k = 60 + 10 * ((t + r) % 4);
          request.seed = 23 + r;
          // Tight-but-feasible budgets: some degrade, none may error.
          request.deadline_ms = 40 + 30 * (r % 3);
        }
        auto response = server->submit(request).get();
        ++callbacks;
        std::lock_guard lock(mutex);
        if (is_canonical) canonical.push_back(response);
        responses.push_back(std::move(response));
      }
    });
  }
  for (auto& client : clients) client.join();

  // Every request was answered exactly once.
  ASSERT_EQ(callbacks.load(), kClientThreads * kRequestsPerThread);
  ASSERT_EQ(responses.size(), kClientThreads * kRequestsPerThread);

  for (const ServeResponse& response : responses) {
    // Complete or degraded — an error under pure concurrency is a bug.
    ASSERT_TRUE(response.status == ServeResponse::Status::kComplete ||
                response.status == ServeResponse::Status::kDegraded)
        << response.id << ": " << response.status_name() << " / "
        << response.reason << " / " << response.detail;
    EXPECT_EQ(response.selected.size(), response.selected_count);

    // Requests that expired waiting in the queue never solved, so they
    // carry no cache delta; everything that reached a solver slot must.
    if (response.reason == "queued_past_deadline") {
      EXPECT_FALSE(response.disk_cache.has_value()) << response.id;
      continue;
    }
    ASSERT_TRUE(response.disk_cache.has_value()) << response.id;
    const api::DiskCacheSummary& cache = *response.disk_cache;
    if (response.status == ServeResponse::Status::kComplete) {
      EXPECT_GT(cache.hits + cache.misses, 0u) << response.id;
    }
    EXPECT_LE(cache.resident_blocks_high_water, cache.max_cached_blocks)
        << response.id;
    EXPECT_LE(cache.prefetch_loaded, cache.prefetch_issued) << response.id;
  }

  // The identical-request cohort: no deadline, so all complete, and the
  // shared mutable block cache must not have leaked into the results.
  ASSERT_GE(canonical.size(), kClientThreads * (kRequestsPerThread / 3));
  for (const ServeResponse& response : canonical) {
    ASSERT_EQ(response.status, ServeResponse::Status::kComplete)
        << response.id << ": " << response.reason;
    EXPECT_EQ(response.selected, canonical.front().selected)
        << response.id << " diverged from " << canonical.front().id;
    EXPECT_DOUBLE_EQ(response.objective, canonical.front().objective);
  }

  // Counter audit: every accepted request resolved to exactly one outcome.
  const ServerCounters counters = server->counters();
  EXPECT_EQ(counters.accepted, kClientThreads * kRequestsPerThread);
  EXPECT_EQ(counters.rejected, 0u);
  EXPECT_EQ(counters.errors, 0u);
  EXPECT_EQ(counters.completed + counters.degraded, counters.accepted);
  EXPECT_EQ(counters.queue_depth, 0u);
  EXPECT_EQ(counters.inflight, 0u);
  EXPECT_LE(counters.queue_depth_high_water, 256u);

  server->shutdown();

  // The resident DiskGroundSet's absolute stats stay sane after the storm.
  const auto* disk = dynamic_cast<const graph::DiskGroundSet*>(
      server->ground_set("toy"));
  ASSERT_NE(disk, nullptr);
  const graph::DiskCacheStats stats = disk->stats();
  EXPECT_GT(stats.hits + stats.misses, 0u);
  EXPECT_LE(stats.resident_blocks_high_water, 8u);
}

TEST_F(ServeConcurrencyTest, DrainUnderConcurrentSubmitters) {
  auto server = make_disk_server();

  // Threads submit while another thread pivots into drain: every submit
  // must resolve (completed, degraded, or a typed "draining" reject) — no
  // hangs, no drops.
  std::atomic<std::size_t> answered{0};
  std::atomic<std::size_t> rejected{0};
  std::vector<std::thread> clients;
  for (std::size_t t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      for (std::size_t r = 0; r < 4; ++r) {
        ServeRequest request;
        request.id = "d" + std::to_string(t) + "-" + std::to_string(r);
        request.dataset = "toy";
        request.k = 80;
        const auto response = server->submit(request).get();
        ++answered;
        if (response.status == ServeResponse::Status::kRejected) {
          EXPECT_EQ(response.reason, "draining");
          ++rejected;
        }
      }
    });
  }
  std::thread drainer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    server->begin_drain();
  });
  for (auto& client : clients) client.join();
  drainer.join();
  server->shutdown();

  EXPECT_EQ(answered.load(), 16u);
  const ServerCounters counters = server->counters();
  EXPECT_EQ(counters.accepted + counters.rejected, 16u);
  EXPECT_EQ(counters.completed + counters.degraded + counters.errors,
            counters.accepted);
  EXPECT_EQ(counters.errors, 0u);
}

}  // namespace
}  // namespace subsel::serve
