// AdmissionQueue: bounded capacity with typed shedding, strict priority
// between classes, FIFO within a class, and the drain protocol dispatcher
// threads rely on (pushes reject, pops run the backlog dry, then nullptr).
#include "serve/admission_queue.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace subsel::serve {
namespace {

std::unique_ptr<PendingRequest> make_item(const std::string& id,
                                          Priority priority) {
  auto item = std::make_unique<PendingRequest>();
  item->request.id = id;
  item->request.priority = priority;
  item->deadline = Deadline::unlimited();
  return item;
}

TEST(AdmissionQueue, FifoWithinOneClass) {
  AdmissionQueue queue(8);
  for (int i = 0; i < 3; ++i) {
    auto item = make_item("b" + std::to_string(i), Priority::kBatch);
    EXPECT_EQ(queue.try_push(item), "");
  }
  EXPECT_EQ(queue.pop()->request.id, "b0");
  EXPECT_EQ(queue.pop()->request.id, "b1");
  EXPECT_EQ(queue.pop()->request.id, "b2");
}

TEST(AdmissionQueue, InteractiveAlwaysOvertakesBatch) {
  AdmissionQueue queue(8);
  auto b0 = make_item("b0", Priority::kBatch);
  auto b1 = make_item("b1", Priority::kBatch);
  auto i0 = make_item("i0", Priority::kInteractive);
  ASSERT_EQ(queue.try_push(b0), "");
  ASSERT_EQ(queue.try_push(b1), "");
  ASSERT_EQ(queue.try_push(i0), "");
  // The interactive request arrived LAST but is dequeued FIRST.
  EXPECT_EQ(queue.pop()->request.id, "i0");
  EXPECT_EQ(queue.pop()->request.id, "b0");
  EXPECT_EQ(queue.pop()->request.id, "b1");
}

TEST(AdmissionQueue, CapacitySharedAcrossClassesAndShedsTyped) {
  AdmissionQueue queue(2);
  auto a = make_item("a", Priority::kBatch);
  auto b = make_item("b", Priority::kInteractive);
  auto c = make_item("c", Priority::kInteractive);
  ASSERT_EQ(queue.try_push(a), "");
  ASSERT_EQ(queue.try_push(b), "");
  // The bound covers BOTH classes: interactive cannot push past it either.
  EXPECT_EQ(queue.try_push(c), "queue_full");
  // The rejected item is untouched so the caller can answer it.
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->request.id, "c");
  EXPECT_EQ(queue.depth(), 2u);
}

TEST(AdmissionQueue, HighWaterTracksDeepestBacklog) {
  AdmissionQueue queue(8);
  for (int i = 0; i < 5; ++i) {
    auto item = make_item(std::to_string(i), Priority::kBatch);
    ASSERT_EQ(queue.try_push(item), "");
  }
  for (int i = 0; i < 5; ++i) queue.pop();
  EXPECT_EQ(queue.depth(), 0u);
  EXPECT_EQ(queue.high_water(), 5u);
}

TEST(AdmissionQueue, DrainRejectsPushesButDrainsBacklog) {
  AdmissionQueue queue(8);
  auto queued = make_item("queued", Priority::kBatch);
  ASSERT_EQ(queue.try_push(queued), "");
  queue.begin_drain();
  EXPECT_TRUE(queue.draining());

  auto late = make_item("late", Priority::kInteractive);
  EXPECT_EQ(queue.try_push(late), "draining");
  ASSERT_NE(late, nullptr);  // caller still owns it

  // Already-admitted work survives the pivot...
  auto popped = queue.pop();
  ASSERT_NE(popped, nullptr);
  EXPECT_EQ(popped->request.id, "queued");
  // ...and an empty draining queue is the dispatcher exit signal.
  EXPECT_EQ(queue.pop(), nullptr);
  EXPECT_EQ(queue.pop(), nullptr);  // stays terminal
}

TEST(AdmissionQueue, BlockedPopWakesOnPush) {
  AdmissionQueue queue(4);
  std::string popped_id;
  std::thread consumer([&] {
    const auto item = queue.pop();
    if (item != nullptr) popped_id = item->request.id;
  });
  // Give the consumer a moment to block, then feed it.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  auto item = make_item("wake", Priority::kBatch);
  ASSERT_EQ(queue.try_push(item), "");
  consumer.join();
  EXPECT_EQ(popped_id, "wake");
}

TEST(AdmissionQueue, BlockedPopWakesOnDrain) {
  AdmissionQueue queue(4);
  std::thread consumer([&] { EXPECT_EQ(queue.pop(), nullptr); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.begin_drain();
  consumer.join();
}

TEST(AdmissionQueue, DepthOfReportsPerClass) {
  AdmissionQueue queue(8);
  auto a = make_item("a", Priority::kBatch);
  auto b = make_item("b", Priority::kBatch);
  auto c = make_item("c", Priority::kInteractive);
  ASSERT_EQ(queue.try_push(a), "");
  ASSERT_EQ(queue.try_push(b), "");
  ASSERT_EQ(queue.try_push(c), "");
  EXPECT_EQ(queue.depth_of(Priority::kBatch), 2u);
  EXPECT_EQ(queue.depth_of(Priority::kInteractive), 1u);
}

}  // namespace
}  // namespace subsel::serve
