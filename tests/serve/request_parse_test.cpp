// Wire-request parsing: every malformed, unknown, missing, or oversized
// input yields a TYPED reject (RequestError with the right code) — never a
// crash, never a silently defaulted field. This is the daemon's first line
// of defense: everything arriving on the socket goes through parse_request.
#include "serve/wire.h"

#include <gtest/gtest.h>

#include <string>

#include "serve/json_parse.h"

namespace subsel::serve {
namespace {

using Code = RequestError::Code;

Code reject_code(const std::string& line,
                 const ParseLimits& limits = ParseLimits{}) {
  try {
    parse_request(line, limits);
  } catch (const RequestError& e) {
    return e.code();
  }
  ADD_FAILURE() << "expected a RequestError for: " << line;
  return Code::kMalformedJson;
}

TEST(RequestParse, ValidSelectRequest) {
  const auto request = parse_request(
      R"({"type":"select","id":"r1","dataset":"cifar","k":500,)"
      R"("solver":"distributed-greedy","objective":"pairwise","alpha":0.8,)"
      R"("deadline_ms":250,"priority":"interactive","seed":7})",
      ParseLimits{});
  EXPECT_EQ(request.kind, ServeRequest::Kind::kSelect);
  EXPECT_EQ(request.id, "r1");
  EXPECT_EQ(request.dataset, "cifar");
  EXPECT_EQ(request.k, 500u);
  EXPECT_EQ(request.solver, "distributed-greedy");
  EXPECT_EQ(request.objective, "pairwise");
  EXPECT_DOUBLE_EQ(request.alpha, 0.8);
  EXPECT_EQ(request.deadline_ms, 250u);
  EXPECT_EQ(request.priority, Priority::kInteractive);
  EXPECT_EQ(request.seed, 7u);
}

TEST(RequestParse, ValidStatsRequest) {
  const auto request = parse_request(R"({"type":"stats","id":"s1"})",
                                     ParseLimits{});
  EXPECT_EQ(request.kind, ServeRequest::Kind::kStats);
  EXPECT_EQ(request.id, "s1");
}

TEST(RequestParse, RequestToJsonRoundTrips) {
  ServeRequest original;
  original.id = "round-trip";
  original.dataset = "toy";
  original.k = 42;
  original.priority = Priority::kInteractive;
  original.deadline_ms = 125;
  original.solver = "greedi";
  original.objective = "facility-location";
  original.alpha = 0.5;
  original.seed = 99;
  original.return_selection = false;

  const auto parsed = parse_request(original.to_json(), ParseLimits{});
  EXPECT_EQ(parsed.id, original.id);
  EXPECT_EQ(parsed.dataset, original.dataset);
  EXPECT_EQ(parsed.k, original.k);
  EXPECT_EQ(parsed.priority, original.priority);
  EXPECT_EQ(parsed.deadline_ms, original.deadline_ms);
  EXPECT_EQ(parsed.solver, original.solver);
  EXPECT_EQ(parsed.objective, original.objective);
  EXPECT_DOUBLE_EQ(parsed.alpha, original.alpha);
  EXPECT_EQ(parsed.seed, original.seed);
  EXPECT_FALSE(parsed.return_selection);
}

TEST(RequestParse, MalformedJsonRejects) {
  EXPECT_EQ(reject_code("not json at all"), Code::kMalformedJson);
  EXPECT_EQ(reject_code(""), Code::kMalformedJson);
  EXPECT_EQ(reject_code("{\"type\":"), Code::kMalformedJson);
  EXPECT_EQ(reject_code("{} trailing"), Code::kMalformedJson);
  EXPECT_EQ(reject_code("[1,2,3]"), Code::kMalformedJson);  // not an object
  EXPECT_EQ(reject_code("\"select\""), Code::kMalformedJson);
  // Duplicate keys are ambiguous; the strict parser refuses to pick one.
  EXPECT_EQ(reject_code(R"({"id":"a","id":"b","type":"stats"})"),
            Code::kMalformedJson);
}

TEST(RequestParse, DeeplyNestedJsonRejectsInsteadOfOverflowing) {
  std::string bomb;
  for (int i = 0; i < 2000; ++i) bomb += '[';
  for (int i = 0; i < 2000; ++i) bomb += ']';
  EXPECT_THROW(JsonValue::parse(bomb), JsonParseError);
  EXPECT_EQ(reject_code(bomb), Code::kMalformedJson);
}

TEST(RequestParse, MissingRequiredFieldsReject) {
  // No id at all, and an empty id.
  EXPECT_EQ(reject_code(R"({"type":"stats"})"), Code::kMissingField);
  EXPECT_EQ(reject_code(R"({"type":"stats","id":""})"), Code::kMissingField);
  // No type.
  EXPECT_EQ(reject_code(R"({"id":"r1"})"), Code::kMissingField);
  // Select without a dataset, and without a budget.
  EXPECT_EQ(reject_code(R"({"type":"select","id":"r1","k":5})"),
            Code::kMissingField);
  EXPECT_EQ(reject_code(R"({"type":"select","id":"r1","dataset":"toy"})"),
            Code::kMissingField);
}

TEST(RequestParse, RejectCarriesTheRequestId) {
  try {
    parse_request(R"({"type":"select","id":"carry-me"})", ParseLimits{});
    FAIL() << "expected a reject";
  } catch (const RequestError& e) {
    EXPECT_EQ(e.id(), "carry-me");
  }
}

TEST(RequestParse, UnknownTypeRejects) {
  EXPECT_EQ(reject_code(R"({"type":"explode","id":"r1"})"),
            Code::kUnknownType);
}

TEST(RequestParse, UnknownSolverAndObjectiveRejectAtParse) {
  EXPECT_EQ(reject_code(R"({"type":"select","id":"r1","dataset":"toy",)"
                        R"("k":5,"solver":"quantum-annealer"})"),
            Code::kUnknownSolver);
  EXPECT_EQ(reject_code(R"({"type":"select","id":"r1","dataset":"toy",)"
                        R"("k":5,"objective":"vibes"})"),
            Code::kUnknownObjective);
}

TEST(RequestParse, UnknownFieldRejects) {
  // Strict schema: a typo'd field must not be silently ignored.
  EXPECT_EQ(reject_code(R"({"type":"select","id":"r1","dataset":"toy",)"
                        R"("k":5,"dedline_ms":100})"),
            Code::kUnknownField);
  EXPECT_EQ(reject_code(R"({"type":"stats","id":"s1","extra":1})"),
            Code::kUnknownField);
}

TEST(RequestParse, BadFieldValuesReject) {
  // Wrong types.
  EXPECT_EQ(reject_code(R"({"type":"select","id":"r1","dataset":7,"k":5})"),
            Code::kBadField);
  EXPECT_EQ(reject_code(R"({"type":"select","id":"r1","dataset":"toy",)"
                        R"("k":"five"})"),
            Code::kBadField);
  EXPECT_EQ(reject_code(R"({"type":"select","id":"r1","dataset":"toy",)"
                        R"("k":5,"utility_weighted":"yes"})"),
            Code::kBadField);
  EXPECT_EQ(reject_code(R"({"id":7,"type":"stats"})"), Code::kBadField);
  // Out-of-domain values.
  EXPECT_EQ(reject_code(R"({"type":"select","id":"r1","dataset":"toy",)"
                        R"("k":-3})"),
            Code::kBadField);
  EXPECT_EQ(reject_code(R"({"type":"select","id":"r1","dataset":"toy",)"
                        R"("k":2.5})"),
            Code::kBadField);
  EXPECT_EQ(reject_code(R"({"type":"select","id":"r1","dataset":"toy",)"
                        R"("fraction":1.5})"),
            Code::kBadField);
  EXPECT_EQ(reject_code(R"({"type":"select","id":"r1","dataset":"toy",)"
                        R"("k":5,"priority":"urgent"})"),
            Code::kBadField);
  EXPECT_EQ(reject_code(R"({"type":"select","id":"r1","dataset":"toy",)"
                        R"("k":5,"bounding":"psychic"})"),
            Code::kBadField);
}

TEST(RequestParse, ConstraintFieldsParseAndRoundTrip) {
  const auto request = parse_request(
      R"({"type":"select","id":"c1","dataset":"toy","k":20,)"
      R"("cost_budget":12.5,"group_cap":3})",
      ParseLimits{});
  EXPECT_DOUBLE_EQ(request.cost_budget, 12.5);
  EXPECT_EQ(request.group_cap, 3u);
  // Constrained requests default bounding off (the pre-pass is
  // unconstrained and would be rejected downstream) — but only when the
  // field is absent, so an explicit conflicting value still gets its typed
  // downstream reject.
  EXPECT_EQ(request.bounding, "none");

  const auto round_tripped = parse_request(request.to_json(), ParseLimits{});
  EXPECT_DOUBLE_EQ(round_tripped.cost_budget, 12.5);
  EXPECT_EQ(round_tripped.group_cap, 3u);
  EXPECT_EQ(round_tripped.bounding, "none");

  // Explicit bounding survives alongside constraints.
  const auto explicit_bounding = parse_request(
      R"({"type":"select","id":"c2","dataset":"toy","k":20,)"
      R"("cost_budget":1.0,"bounding":"exact"})",
      ParseLimits{});
  EXPECT_EQ(explicit_bounding.bounding, "exact");

  // Unconstrained requests do not serialize the constraint fields.
  ServeRequest plain;
  plain.id = "p1";
  plain.dataset = "toy";
  plain.k = 5;
  const std::string json = plain.to_json();
  EXPECT_EQ(json.find("cost_budget"), std::string::npos);
  EXPECT_EQ(json.find("group_cap"), std::string::npos);
}

TEST(RequestParse, BadConstraintFieldValuesReject) {
  EXPECT_EQ(reject_code(R"({"type":"select","id":"r1","dataset":"toy",)"
                        R"("k":5,"cost_budget":-1.0})"),
            Code::kBadField);
  EXPECT_EQ(reject_code(R"({"type":"select","id":"r1","dataset":"toy",)"
                        R"("k":5,"cost_budget":"cheap"})"),
            Code::kBadField);
  EXPECT_EQ(reject_code(R"({"type":"select","id":"r1","dataset":"toy",)"
                        R"("k":5,"group_cap":-2})"),
            Code::kBadField);
  EXPECT_EQ(reject_code(R"({"type":"select","id":"r1","dataset":"toy",)"
                        R"("k":5,"group_cap":1.5})"),
            Code::kBadField);
}

TEST(RequestParse, OversizedRequestRejectsBeforeParsing) {
  ParseLimits limits;
  limits.max_request_bytes = 128;
  std::string big = R"({"type":"select","id":"r1","dataset":")";
  big += std::string(512, 'x');
  big += R"(","k":5})";
  EXPECT_EQ(reject_code(big, limits), Code::kOversized);
  // Size is checked before JSON validity: garbage past the limit is still
  // an oversize reject, proving the parser never touched it.
  EXPECT_EQ(reject_code(std::string(512, '{'), limits), Code::kOversized);
}

TEST(RequestParse, CodeNamesAreStable) {
  // The wire-visible reject reasons CI and clients match on.
  EXPECT_STREQ(request_error_code_name(Code::kMalformedJson), "malformed_json");
  EXPECT_STREQ(request_error_code_name(Code::kOversized), "oversized_request");
  EXPECT_STREQ(request_error_code_name(Code::kMissingField), "missing_field");
  EXPECT_STREQ(request_error_code_name(Code::kBadField), "bad_field");
  EXPECT_STREQ(request_error_code_name(Code::kUnknownField), "unknown_field");
  EXPECT_STREQ(request_error_code_name(Code::kUnknownType), "unknown_type");
  EXPECT_STREQ(request_error_code_name(Code::kUnknownSolver), "unknown_solver");
  EXPECT_STREQ(request_error_code_name(Code::kUnknownObjective),
               "unknown_objective");
}

TEST(JsonParse, UnicodeEscapesDecode) {
  // \u00e9 (2-byte UTF-8) and the \ud83d\ude00 surrogate pair (U+1F600,
  // 4-byte UTF-8) must decode; a pair must never emit two lone surrogates.
  const auto value = JsonValue::parse(R"("a\u00e9\ud83d\ude00b")");
  EXPECT_EQ(value.as_string(), "a\xc3\xa9\xf0\x9f\x98\x80"
                               "b");
}

TEST(JsonParse, StrictnessCorners) {
  EXPECT_THROW(JsonValue::parse("01"), JsonParseError);     // leading zero
  EXPECT_THROW(JsonValue::parse("1."), JsonParseError);     // bare dot
  EXPECT_THROW(JsonValue::parse("+1"), JsonParseError);     // leading plus
  EXPECT_THROW(JsonValue::parse("[1,]"), JsonParseError);   // trailing comma
  EXPECT_THROW(JsonValue::parse("{'a':1}"), JsonParseError);  // single quotes
  EXPECT_THROW(JsonValue::parse("\"\x01\""), JsonParseError);  // raw control
  EXPECT_THROW(JsonValue::parse(R"("\ud800")"), JsonParseError);  // lone surrogate
  EXPECT_NO_THROW(JsonValue::parse("  {\"a\": [1, 2.5e3, true, null]} "));
}

}  // namespace
}  // namespace subsel::serve
