// The Unix-socket transport end to end: real daemon stack, real client,
// newline-delimited JSON over a real socket. Covers id-matched out-of-order
// responses, wire-level typed rejects (malformed line, oversized line with
// connection resync), multiple concurrent connections, and graceful drain
// visible as clean EOF from the client side.
#include "serve/socket_server.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "data/datasets.h"
#include "graph/ground_set.h"
#include "serve/client.h"
#include "serve/server.h"

namespace subsel::serve {
namespace {

class SocketTransportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = std::make_unique<data::Dataset>(data::toy_dataset(1500, 8, 42));
    ground_set_ = std::make_unique<graph::InMemoryGroundSet>(
        dataset_->graph, dataset_->utilities);
    ServerConfig config;
    config.max_concurrent = 2;
    // Small wire limit so the oversized path is cheap to hit.
    config.limits.max_request_bytes = 2048;
    server_ = std::make_unique<SelectionServer>(config);
    server_->register_ground_set("toy", ground_set_.get());

    socket_path_ = (std::filesystem::temp_directory_path() /
                    ("subsel_transport_test_" +
                     std::to_string(::getpid()) + ".sock"))
                       .string();
    transport_ = std::make_unique<SocketServer>(*server_, socket_path_);
    accept_thread_ = std::thread([this] { transport_->run(); });
  }

  void TearDown() override {
    transport_->stop();
    accept_thread_.join();
    transport_.reset();
    server_.reset();
  }

  std::unique_ptr<data::Dataset> dataset_;
  std::unique_ptr<graph::InMemoryGroundSet> ground_set_;
  std::unique_ptr<SelectionServer> server_;
  std::unique_ptr<SocketServer> transport_;
  std::thread accept_thread_;
  std::string socket_path_;
};

TEST_F(SocketTransportTest, SelectRoundTrip) {
  ServeClient client(socket_path_);
  ServeRequest request;
  request.id = "rt-1";
  request.dataset = "toy";
  request.k = 50;
  const auto response = client.call(request);
  EXPECT_EQ(response.id, "rt-1");
  EXPECT_EQ(response.status, "complete");
  EXPECT_EQ(response.schema_version, 1);
  EXPECT_EQ(response.selected.size(), 50u);
  EXPECT_EQ(response.selected_count, 50u);
  EXPECT_GT(response.objective, 0.0);
}

TEST_F(SocketTransportTest, ResponsesMatchedByIdNotArrivalOrder) {
  ServeClient client(socket_path_);
  // A batch request big enough to still be solving when the interactive
  // one (which overtakes it in the queue under load) finishes — either
  // ordering on the wire must resolve to the right futures.
  ServeRequest big;
  big.id = "big";
  big.dataset = "toy";
  big.k = 400;
  big.priority = Priority::kBatch;
  ServeRequest small;
  small.id = "small";
  small.dataset = "toy";
  small.k = 10;
  small.priority = Priority::kInteractive;

  auto big_future = client.submit(big);
  auto small_future = client.submit(small);
  const auto small_response = small_future.get();
  const auto big_response = big_future.get();
  EXPECT_EQ(small_response.id, "small");
  EXPECT_EQ(small_response.selected.size(), 10u);
  EXPECT_EQ(big_response.id, "big");
  EXPECT_EQ(big_response.selected.size(), 400u);
}

TEST_F(SocketTransportTest, MalformedLineGetsTypedRejectAndConnectionLives) {
  ServeClient client(socket_path_);
  client.submit_raw("", "this is not json");
  // The reject has no id to echo, so it lands on the unmatched list; the
  // connection survives for a well-formed follow-up.
  ServeRequest request;
  request.id = "after-garbage";
  request.dataset = "toy";
  request.k = 20;
  const auto response = client.call(request);
  EXPECT_EQ(response.status, "complete");

  const auto unmatched = client.take_unmatched();
  ASSERT_EQ(unmatched.size(), 1u);
  EXPECT_EQ(unmatched[0].status, "rejected");
  EXPECT_EQ(unmatched[0].reason, "malformed_json");
}

TEST_F(SocketTransportTest, UnknownSolverRejectEchoesId) {
  ServeClient client(socket_path_);
  const auto response =
      client
          .submit_raw("bad-solver",
                      R"({"type":"select","id":"bad-solver","dataset":"toy",)"
                      R"("k":5,"solver":"nope"})")
          .get();
  EXPECT_EQ(response.id, "bad-solver");
  EXPECT_EQ(response.status, "rejected");
  EXPECT_EQ(response.reason, "unknown_solver");
}

TEST_F(SocketTransportTest, OversizedLineRejectsThenConnectionResyncs) {
  ServeClient client(socket_path_);
  // One giant line (beyond the 2 KiB wire limit), then a valid request on
  // the same connection: the server must shed the former with a typed
  // reject and still answer the latter.
  std::string giant = R"({"type":"select","id":"giant","dataset":")";
  giant += std::string(8192, 'x');
  giant += R"(","k":5})";
  client.submit_raw("", giant);

  ServeRequest request;
  request.id = "after-giant";
  request.dataset = "toy";
  request.k = 20;
  const auto response = client.call(request);
  EXPECT_EQ(response.status, "complete");

  const auto unmatched = client.take_unmatched();
  ASSERT_GE(unmatched.size(), 1u);
  EXPECT_EQ(unmatched[0].status, "rejected");
  EXPECT_EQ(unmatched[0].reason, "oversized_request");
}

TEST_F(SocketTransportTest, ConcurrentConnectionsShareTheServer) {
  constexpr std::size_t kConnections = 4;
  std::vector<std::thread> threads;
  std::atomic<std::size_t> completed{0};
  for (std::size_t c = 0; c < kConnections; ++c) {
    threads.emplace_back([this, c, &completed] {
      ServeClient client(socket_path_);
      for (std::size_t r = 0; r < 3; ++r) {
        ServeRequest request;
        request.id = "conn" + std::to_string(c) + "-" + std::to_string(r);
        request.dataset = "toy";
        request.k = 30;
        if (client.call(request).status == "complete") ++completed;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(completed.load(), kConnections * 3);
  EXPECT_EQ(transport_->connections_accepted(), kConnections);
}

TEST_F(SocketTransportTest, StatsOverTheWire) {
  ServeClient client(socket_path_);
  ServeRequest stats;
  stats.kind = ServeRequest::Kind::kStats;
  stats.id = "s1";
  const auto response = client.call(stats);
  EXPECT_EQ(response.status, "ok");
  const JsonValue* datasets = response.document.find("datasets");
  ASSERT_NE(datasets, nullptr);
  ASSERT_EQ(datasets->items().size(), 1u);
  EXPECT_EQ(datasets->items()[0].find("name")->as_string(), "toy");
}

}  // namespace
}  // namespace subsel::serve
