// Fault-injection stress matrix: every failpoint site — alone and in pairs —
// armed with probabilistic schedules while the full out-of-core pipeline
// solves on an 8-thread pool. The contract under fire: no crash, no
// deadlock, the disk-cache residency budget holds, and every run ends in
// either a valid selection or one of the documented typed errors.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/thread_pool.h"
#include "core/distributed_greedy.h"
#include "core/selection_pipeline.h"
#include "data/datasets.h"
#include "graph/disk_ground_set.h"

namespace subsel {
namespace {

class FaultInjectionStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    failpoint::disarm_all();
    dir_ = std::filesystem::temp_directory_path() / "subsel_fault_stress_test";
    std::filesystem::create_directories(dir_);
    dataset_ = data::toy_dataset(600, 10, 55);
    graph_path_ = (dir_ / "graph.bin").string();
    dataset_.graph.save(graph_path_);
  }
  void TearDown() override {
    failpoint::disarm_all();
    std::filesystem::remove_all(dir_);
  }

  static graph::DiskGroundSetConfig tiny_cache() {
    graph::DiskGroundSetConfig config;
    config.block_edges = 128;
    config.max_cached_blocks = 8;
    config.num_shards = 4;
    return config;
  }

  /// One full out-of-core solve under whatever faults are armed. Returns a
  /// label of the outcome; anything other than success or a documented typed
  /// error fails the test at the call site.
  std::string run_solve_under_faults(std::uint64_t seed) {
    ThreadPool pool(8);
    try {
      const graph::DiskGroundSet disk(graph_path_, dataset_.utilities,
                                      tiny_cache());
      core::DistributedGreedyConfig config;
      config.objective = core::ObjectiveParams::from_alpha(0.9);
      config.num_machines = 8;
      config.num_rounds = 3;
      config.seed = seed;
      config.pool = &pool;
      config.prefetch_depth = 2;
      config.checkpoint_file = (dir_ / "stress.ckpt").string();
      const auto result = core::distributed_greedy(disk, 60, config);

      // Success: the selection must be fully valid and the cache budget
      // must have held even while faults were firing.
      EXPECT_EQ(result.selected.size(), 60u);
      EXPECT_TRUE(
          std::is_sorted(result.selected.begin(), result.selected.end()));
      EXPECT_TRUE(std::adjacent_find(result.selected.begin(),
                                     result.selected.end()) ==
                  result.selected.end());
      for (const core::NodeId id : result.selected) {
        EXPECT_LT(static_cast<std::size_t>(id), disk.num_points());
      }
      EXPECT_LE(disk.stats().resident_blocks_high_water,
                tiny_cache().max_cached_blocks);
      return "ok";
    } catch (const graph::DiskFormatError&) {
      return "disk-error";  // documented typed outcome
    } catch (const TaskError&) {
      return "task-error";  // documented typed outcome
    } catch (const failpoint::FailpointError&) {
      return "failpoint-error";  // documented typed outcome
    }
    // Any other exception type escapes and fails the test — by design.
  }

  std::filesystem::path dir_;
  data::Dataset dataset_;
  std::string graph_path_;
};

TEST_F(FaultInjectionStressTest, EverySiteAloneEndsInValidResultOrTypedError) {
  const std::vector<std::string> specs = {
      "disk.open=prob(0.2,101)",       "disk.pread=prob(0.05,102)",
      "disk.prefetch=prob(0.3,103)",   "pool.task=prob(0.002,104)",
      "checkpoint.write=prob(0.5,105)", "arena.alloc=prob(0.01,106)",
  };
  for (std::size_t i = 0; i < specs.size(); ++i) {
    SCOPED_TRACE(specs[i]);
    failpoint::arm_from_spec(specs[i]);
    const std::string outcome = run_solve_under_faults(900 + i);
    EXPECT_TRUE(outcome == "ok" || outcome == "disk-error" ||
                outcome == "task-error" || outcome == "failpoint-error")
        << outcome;
    failpoint::disarm_all();
  }
}

TEST_F(FaultInjectionStressTest, SitePairsEndInValidResultOrTypedError) {
  // Cross-layer pairs: a disk-layer fault and a compute-layer fault firing
  // in the same run must still never crash, hang, or corrupt results.
  const std::vector<std::string> specs = {
      "disk.pread=prob(0.05,201);pool.task=prob(0.002,202)",
      "disk.prefetch=prob(0.3,203);checkpoint.write=prob(0.5,204)",
      "disk.pread=prob(0.05,205);arena.alloc=prob(0.01,206)",
      "pool.task=prob(0.002,207);checkpoint.write=prob(0.5,208)",
      "disk.open=prob(0.1,209);disk.pread=prob(0.05,210)",
  };
  for (std::size_t i = 0; i < specs.size(); ++i) {
    SCOPED_TRACE(specs[i]);
    failpoint::arm_from_spec(specs[i]);
    const std::string outcome = run_solve_under_faults(950 + i);
    EXPECT_TRUE(outcome == "ok" || outcome == "disk-error" ||
                outcome == "task-error" || outcome == "failpoint-error")
        << outcome;
    failpoint::disarm_all();
  }
}

TEST_F(FaultInjectionStressTest, TransientOnlyFaultsStillMatchFaultFreeRun) {
  // Sparse pread faults are absorbed by the bounded-backoff retry loop
  // (promotion to kIo needs 6 consecutive failing hits for one read — odds
  // ~1e-6 at this rate) and prefetch faults only degrade hints: the
  // selection must be bit-identical to the fault-free run on the same seed.
  const auto reference = [&] {
    const graph::DiskGroundSet disk(graph_path_, dataset_.utilities,
                                    tiny_cache());
    core::DistributedGreedyConfig config;
    config.objective = core::ObjectiveParams::from_alpha(0.9);
    config.num_machines = 8;
    config.num_rounds = 3;
    config.seed = 992;
    return core::distributed_greedy(disk, 60, config);
  }();

  failpoint::arm_from_spec("disk.pread=prob(0.1,300);disk.prefetch=prob(0.5,301)");
  const graph::DiskGroundSet faulty(graph_path_, dataset_.utilities,
                                    tiny_cache());
  core::DistributedGreedyConfig config;
  config.objective = core::ObjectiveParams::from_alpha(0.9);
  config.num_machines = 8;
  config.num_rounds = 3;
  config.seed = 992;
  const auto under_faults = core::distributed_greedy(faulty, 60, config);
  failpoint::disarm_all();

  EXPECT_EQ(under_faults.selected, reference.selected);
  EXPECT_EQ(under_faults.objective, reference.objective);
  EXPECT_GT(faulty.stats().read_retries, 0u);
}

}  // namespace
}  // namespace subsel
