// End-to-end integration: datasets -> graph -> bounding -> distributed greedy
// -> scoring, plus the larger-than-memory virtual dataset path and the
// committed golden out-of-core fixture (tests/golden/).
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>

#include "api/solver_registry.h"
#include "baselines/baselines.h"
#include "beam/beam_scoring.h"
#include "core/normalization.h"
#include "core/selection_pipeline.h"
#include "data/datasets.h"
#include "data/dataset_io.h"
#include "data/perturbed.h"
#include "graph/disk_ground_set.h"
#include "dataflow/transforms.h"

namespace subsel {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cache_dir_ = std::filesystem::temp_directory_path() / "subsel_e2e_test";
    std::filesystem::create_directories(cache_dir_);
    setenv("SUBSEL_CACHE_DIR", cache_dir_.c_str(), 1);
  }
  void TearDown() override {
    unsetenv("SUBSEL_CACHE_DIR");
    std::filesystem::remove_all(cache_dir_);
  }
  std::filesystem::path cache_dir_;
};

TEST_F(EndToEndTest, FullPipelineOnToyDataset) {
  const data::Dataset dataset = data::toy_dataset(600, 10, 33);
  const auto ground_set = dataset.ground_set();
  const std::size_t k = 60;

  core::SelectionPipelineConfig config;
  config.objective = core::ObjectiveParams::from_alpha(0.9);
  config.use_bounding = true;
  config.bounding.sampling = core::BoundingSampling::kUniform;
  config.bounding.sample_fraction = 0.3;
  config.greedy.num_machines = 8;
  config.greedy.num_rounds = 4;

  const auto result = core::select_subset(ground_set, k, config);
  EXPECT_EQ(result.selected.size(), k);

  // Compare against centralized greedy and random floor via normalization.
  const auto centralized = core::centralized_greedy(
      dataset.graph, dataset.utilities, config.objective, k);
  const auto random = baselines::random_selection(ground_set, config.objective, k, 3);
  core::ScoreNormalizer normalizer(centralized.objective,
                                   {result.objective, random.objective});
  const double score = normalizer.normalize(result.objective);
  EXPECT_GT(score, 80.0);  // near-centralized quality, Figure 4's regime
  EXPECT_GT(score, normalizer.normalize(random.objective));
}

TEST_F(EndToEndTest, DistributedScoringAgreesWithLocalScoring) {
  const data::Dataset dataset = data::toy_dataset(400, 8, 34);
  const auto ground_set = dataset.ground_set();
  const auto params = core::ObjectiveParams::from_alpha(0.9);

  core::SelectionPipelineConfig config;
  config.objective = params;
  config.greedy.num_machines = 4;
  config.greedy.num_rounds = 2;
  const auto result = core::select_subset(ground_set, 40, config);

  dataflow::PipelineOptions options;
  options.num_shards = 16;
  dataflow::Pipeline pipeline(options);
  const double distributed_score =
      beam::beam_score(pipeline, ground_set, result.selected, params);
  EXPECT_NEAR(distributed_score, result.objective,
              1e-8 * (1.0 + std::abs(result.objective)));
}

TEST_F(EndToEndTest, LargerThanMemoryVirtualDatasetPipeline) {
  // 64 base points x 200 perturbations = 12.8k virtual points, never
  // materialized. Exercises bounding + distributed greedy through the
  // GroundSet interface exactly as the 13B run would.
  const data::Dataset base = data::toy_dataset(64, 4, 35);
  data::PerturbedConfig perturbed_config;
  perturbed_config.perturbations_per_point = 200;
  const data::PerturbedGroundSet ground_set(base, perturbed_config);
  ASSERT_EQ(ground_set.num_points(), 12'800u);

  core::SelectionPipelineConfig config;
  config.objective = core::ObjectiveParams::from_alpha(0.9);
  config.use_bounding = true;
  config.bounding.sampling = core::BoundingSampling::kUniform;
  config.bounding.sample_fraction = 0.3;
  config.greedy.num_machines = 8;
  config.greedy.num_rounds = 2;

  const std::size_t k = 1280;  // 10 %
  const auto result = core::select_subset(ground_set, k, config);
  EXPECT_EQ(result.selected.size(), k);
  std::set<core::NodeId> unique(result.selected.begin(), result.selected.end());
  EXPECT_EQ(unique.size(), k);

  // Quality sanity: beat random selection.
  const auto random = baselines::random_selection(ground_set, config.objective, k, 5);
  EXPECT_GT(result.objective, random.objective);
}

TEST_F(EndToEndTest, GreeDiMergeNeedsMoreMemoryThanMultiRoundPartitions) {
  // The motivating systems comparison: GreeDi's merge machine must hold
  // min(m*k, |V|) candidates — for a 50 % subset that degenerates to the
  // ENTIRE ground set on one machine (each partition of |V|/m = 100 points
  // returns all of them when k > 100), while the multi-round algorithm's
  // per-partition peak stays near |V|/m.
  const data::Dataset dataset = data::toy_dataset(800, 10, 36);
  const auto ground_set = dataset.ground_set();
  const auto params = core::ObjectiveParams::from_alpha(0.9);
  const std::size_t k = 400;  // 50 % subset: merge holds min(8*400, |V|) = |V|

  baselines::GreeDiConfig greedi_config;
  greedi_config.objective = params;
  greedi_config.num_machines = 8;
  const auto greedi_result = baselines::greedi(ground_set, k, greedi_config);

  core::DistributedGreedyConfig dist_config;
  dist_config.objective = params;
  dist_config.num_machines = 8;
  dist_config.num_rounds = 4;
  const auto dist_result = core::distributed_greedy(ground_set, k, dist_config);

  std::size_t dist_peak = 0;
  for (const auto& round : dist_result.rounds) {
    dist_peak = std::max(dist_peak, round.peak_partition_bytes);
  }
  EXPECT_EQ(greedi_result.merge_candidates, 800u);  // merge holds all of |V|
  EXPECT_LT(dist_peak, greedi_result.merge_bytes);
  // And quality stays comparable (within 10 % of GreeDi's).
  EXPECT_GT(dist_result.objective, 0.9 * greedi_result.objective);
}

TEST_F(EndToEndTest, AlphaSweepChangesSelectionCharacter) {
  // Lower alpha emphasizes diversity: selected subsets should overlap less
  // with the pure-utility top-k.
  const data::Dataset dataset = data::toy_dataset(500, 10, 37);
  const std::size_t k = 50;

  auto top_utility = [&] {
    std::vector<core::NodeId> ids(dataset.size());
    for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<core::NodeId>(i);
    std::sort(ids.begin(), ids.end(), [&](core::NodeId a, core::NodeId b) {
      return dataset.utilities[static_cast<std::size_t>(a)] >
             dataset.utilities[static_cast<std::size_t>(b)];
    });
    ids.resize(k);
    return std::set<core::NodeId>(ids.begin(), ids.end());
  }();

  auto overlap_with_topk = [&](double alpha) {
    const auto result = core::centralized_greedy(
        dataset.graph, dataset.utilities, core::ObjectiveParams::from_alpha(alpha), k);
    std::size_t overlap = 0;
    for (core::NodeId v : result.selected) overlap += top_utility.count(v);
    return overlap;
  };

  EXPECT_GE(overlap_with_topk(0.99), overlap_with_topk(0.1));
}

#ifdef SUBSEL_GOLDEN_DIR
TEST_F(EndToEndTest, GoldenOutOfCoreFixtureHasNotDrifted) {
  // The committed fixture (tests/golden/toy600[.graph], written by
  // SimilarityGraph::save / save_dataset at fixture-generation time) is
  // selected out-of-core with pinned parameters; ids AND objective must
  // match the committed expectations exactly. A failure here means the
  // on-disk format, the sharded cache, or the solver's selections silently
  // drifted — version the format (and regenerate the expectations
  // deliberately) instead of shrugging.
  const std::string golden = SUBSEL_GOLDEN_DIR;
  auto scalars = data::load_dataset_scalars(golden + "/toy600");
  graph::DiskGroundSetConfig cache;
  cache.block_edges = 256;
  cache.max_cached_blocks = 8;
  cache.num_shards = 4;
  const graph::DiskGroundSet ground_set(golden + "/toy600.graph",
                                        std::move(scalars.utilities), cache);

  api::SelectionRequest request;
  request.ground_set = &ground_set;
  request.k = 60;
  request.objective = core::ObjectiveParams::from_alpha(0.9);
  request.seed = 23;
  request.solver = "distributed-greedy";
  request.distributed.num_machines = 6;
  request.distributed.num_rounds = 4;
  request.distributed.prefetch_depth = 2;
  const api::SelectionReport report = api::select(request);

  const auto expected_ids = data::load_subset(golden + "/expected_subset.ids");
  EXPECT_EQ(report.selected, expected_ids);

  double expected_objective = 0.0;
  std::ifstream objective_file(golden + "/expected_objective.txt");
  ASSERT_TRUE(objective_file >> expected_objective);
  EXPECT_NEAR(report.objective, expected_objective,
              1e-9 * (1.0 + std::abs(expected_objective)));

  ASSERT_TRUE(report.disk_cache.has_value());
  EXPECT_GT(report.disk_cache->misses + report.disk_cache->prefetch_loaded, 0u)
      << "the golden run must actually page from disk";
  EXPECT_LE(report.disk_cache->resident_blocks_high_water,
            cache.max_cached_blocks);
}
#endif  // SUBSEL_GOLDEN_DIR

TEST_F(EndToEndTest, DiskCheckpointFaultToleranceCompose) {
  // All the operational features at once: a disk-resident adjacency, a
  // checkpointed greedy run preempted twice, and a final dataflow re-score
  // on a lossy cluster — the result must equal the plain in-memory path.
  const auto scratch = std::filesystem::temp_directory_path() / "subsel_compose";
  std::filesystem::create_directories(scratch);
  const std::string data_path = (scratch / "data").string();

  const data::Dataset dataset = data::toy_dataset(1200, 16, 53);
  data::save_dataset(dataset, data_path);

  auto scalars = data::load_dataset_scalars(data_path);
  graph::DiskGroundSetConfig cache;
  cache.block_edges = 512;
  cache.max_cached_blocks = 8;
  const graph::DiskGroundSet disk(data_path + ".graph",
                                  std::move(scalars.utilities), cache);

  core::DistributedGreedyConfig config;
  config.objective = core::ObjectiveParams::from_alpha(0.9);
  config.num_machines = 6;
  config.num_rounds = 5;
  config.checkpoint_file = (scratch / "run.ckpt").string();
  config.stop_after_round = 2;

  auto result = core::distributed_greedy(disk, 120, config);
  EXPECT_TRUE(result.preempted);
  result = core::distributed_greedy(disk, 120, config);  // rounds 3-4
  EXPECT_TRUE(result.preempted);
  config.stop_after_round = 0;
  result = core::distributed_greedy(disk, 120, config);  // finish
  EXPECT_FALSE(result.preempted);
  EXPECT_EQ(result.selected.size(), 120u);

  // Reference: in-memory, no checkpointing.
  const auto memory_ground_set = dataset.ground_set();
  core::DistributedGreedyConfig plain = config;
  plain.checkpoint_file.clear();
  const auto reference = core::distributed_greedy(memory_ground_set, 120, plain);
  EXPECT_EQ(result.selected, reference.selected);

  // Re-score through a lossy dataflow cluster.
  dataflow::PipelineOptions options;
  options.num_shards = 16;
  options.shard_failure_probability = 0.2;
  options.max_shard_attempts = 10;
  dataflow::Pipeline pipeline(options);
  const double distributed_score = beam::beam_score(
      pipeline, disk, result.selected, config.objective);
  core::PairwiseObjective objective(memory_ground_set, config.objective);
  EXPECT_NEAR(distributed_score, objective.evaluate(result.selected), 1e-9);
  EXPECT_GT(pipeline.counter("shard_retries"), 0u);

  std::filesystem::remove_all(scratch);
}

}  // namespace
}  // namespace subsel
