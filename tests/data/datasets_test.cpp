#include "data/datasets.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

namespace subsel::data {
namespace {

class DatasetsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cache_dir_ = std::filesystem::temp_directory_path() / "subsel_datasets_test";
    std::filesystem::remove_all(cache_dir_);
    std::filesystem::create_directories(cache_dir_);
    setenv("SUBSEL_CACHE_DIR", cache_dir_.c_str(), 1);
  }
  void TearDown() override {
    unsetenv("SUBSEL_CACHE_DIR");
    std::filesystem::remove_all(cache_dir_);
  }

  std::filesystem::path cache_dir_;
};

DatasetConfig tiny_config() {
  DatasetConfig config;
  config.name = "tiny";
  config.embeddings.num_points = 300;
  config.embeddings.dim = 16;
  config.embeddings.num_classes = 6;
  config.knn.num_neighbors = 4;
  return config;
}

TEST_F(DatasetsTest, BuildsConsistentDataset) {
  const Dataset dataset = make_dataset(tiny_config());
  EXPECT_EQ(dataset.size(), 300u);
  EXPECT_EQ(dataset.embeddings.rows(), 300u);
  EXPECT_EQ(dataset.labels.size(), 300u);
  EXPECT_EQ(dataset.utilities.size(), 300u);
  EXPECT_TRUE(dataset.graph.is_symmetric());
  EXPECT_GE(dataset.graph.min_degree(), 4u);
  for (double u : dataset.utilities) EXPECT_GE(u, 0.0);
}

TEST_F(DatasetsTest, CacheRoundTripsExactly) {
  const Dataset first = make_dataset(tiny_config());
  // Second call must hit the cache (same fingerprint) and be identical.
  const Dataset second = make_dataset(tiny_config());
  EXPECT_EQ(first.labels, second.labels);
  EXPECT_EQ(first.utilities, second.utilities);
  EXPECT_EQ(first.graph.num_edges(), second.graph.num_edges());
  // The cache directory should now contain the artifacts.
  std::size_t files = 0;
  for (auto it : std::filesystem::directory_iterator(cache_dir_)) {
    (void)it;
    ++files;
  }
  EXPECT_GE(files, 2u);  // dataset blob + graph
}

TEST_F(DatasetsTest, DifferentConfigsGetDifferentCacheEntries) {
  auto config = tiny_config();
  const Dataset a = make_dataset(config);
  config.embeddings.seed += 1;
  const Dataset b = make_dataset(config);
  EXPECT_NE(a.utilities, b.utilities);
}

TEST_F(DatasetsTest, GroundSetViewIsCoherent) {
  const Dataset dataset = make_dataset(tiny_config());
  const auto ground_set = dataset.ground_set();
  EXPECT_EQ(ground_set.num_points(), dataset.size());
  EXPECT_EQ(ground_set.utility(7), dataset.utilities[7]);
  std::vector<graph::Edge> neighbors;
  ground_set.neighbors(7, neighbors);
  EXPECT_EQ(neighbors.size(), dataset.graph.degree(7));
}

TEST_F(DatasetsTest, ToyDatasetIsSmallAndValid) {
  const Dataset toy = toy_dataset(128, 4, 9);
  EXPECT_EQ(toy.size(), 128u);
  EXPECT_TRUE(toy.graph.is_symmetric());
}

TEST_F(DatasetsTest, ProxyShapesFollowPaper) {
  // Tiny scales to keep the test fast; the shape ratios are what matter.
  const Dataset cifar = cifar_proxy(0.02);   // 1000 points
  EXPECT_EQ(cifar.size(), 1000u);
  EXPECT_EQ(cifar.embeddings.dim(), 64u);    // paper: 64-d CIFAR embeddings
  const Dataset imagenet = imagenet_proxy(0.01);  // 1200 points
  EXPECT_EQ(imagenet.size(), 1200u);
  EXPECT_EQ(imagenet.embeddings.dim(), 128u);
}

}  // namespace
}  // namespace subsel::data
