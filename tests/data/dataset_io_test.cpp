// Round-trip and failure behavior of the public dataset/subset IO.
#include "data/dataset_io.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/objective.h"

namespace subsel::data {
namespace {

class DatasetIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "subsel_io_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(DatasetIoTest, DatasetRoundTripPreservesEverything) {
  const Dataset original = toy_dataset(500, 10, 77);
  save_dataset(original, path("roundtrip"));
  const Dataset loaded = load_dataset(path("roundtrip"));

  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.embeddings.dim(), original.embeddings.dim());
  EXPECT_EQ(loaded.labels, original.labels);
  EXPECT_EQ(loaded.utilities, original.utilities);

  // Graph equality via full neighbor comparison.
  for (graph::NodeId v = 0; v < static_cast<graph::NodeId>(original.size()); ++v) {
    const auto a = original.graph.neighbors(v);
    const auto b = loaded.graph.neighbors(v);
    ASSERT_EQ(a.size(), b.size()) << "node " << v;
    for (std::size_t e = 0; e < a.size(); ++e) {
      EXPECT_EQ(a[e], b[e]) << "node " << v << " edge " << e;
    }
  }

  // Embedding payload equality.
  const auto original_flat = original.embeddings.flat();
  const auto loaded_flat = loaded.embeddings.flat();
  ASSERT_EQ(original_flat.size(), loaded_flat.size());
  for (std::size_t i = 0; i < original_flat.size(); ++i) {
    EXPECT_EQ(original_flat[i], loaded_flat[i]);
  }
}

TEST_F(DatasetIoTest, RoundTripPreservesObjectiveValues) {
  const Dataset original = toy_dataset(300, 8, 78);
  save_dataset(original, path("objective"));
  const Dataset loaded = load_dataset(path("objective"));

  std::vector<core::NodeId> subset;
  for (core::NodeId v = 0; v < 300; v += 4) subset.push_back(v);
  const auto params = core::ObjectiveParams::from_alpha(0.9);
  const auto original_gs = original.ground_set();
  const auto loaded_gs = loaded.ground_set();
  core::PairwiseObjective before(original_gs, params);
  core::PairwiseObjective after(loaded_gs, params);
  EXPECT_EQ(before.evaluate(subset), after.evaluate(subset));
}

TEST_F(DatasetIoTest, LoadMissingFileThrows) {
  EXPECT_THROW(load_dataset(path("does_not_exist")), std::runtime_error);
  Dataset dataset;
  EXPECT_FALSE(try_load_dataset(path("does_not_exist"), dataset));
}

TEST_F(DatasetIoTest, LoadRejectsWrongMagic) {
  {
    std::ofstream out(path("garbage"), std::ios::binary);
    const std::uint64_t junk = 0xdeadbeefULL;
    out.write(reinterpret_cast<const char*>(&junk), sizeof(junk));
    for (int i = 0; i < 64; ++i) out.put(static_cast<char>(i));
  }
  Dataset dataset;
  EXPECT_FALSE(try_load_dataset(path("garbage"), dataset));
}

TEST_F(DatasetIoTest, LoadRejectsTruncatedFile) {
  const Dataset original = toy_dataset(200, 5, 79);
  save_dataset(original, path("trunc"));
  // Chop the tail off the main file.
  const auto full_size = std::filesystem::file_size(path("trunc"));
  std::filesystem::resize_file(path("trunc"), full_size / 2);
  Dataset dataset;
  EXPECT_FALSE(try_load_dataset(path("trunc"), dataset));
}

TEST_F(DatasetIoTest, LoadRejectsMissingGraphSidecar) {
  const Dataset original = toy_dataset(200, 5, 80);
  save_dataset(original, path("nograph"));
  std::filesystem::remove(path("nograph") + ".graph");
  Dataset dataset;
  EXPECT_FALSE(try_load_dataset(path("nograph"), dataset));
}

TEST_F(DatasetIoTest, ScalarsLoadSkipsEmbeddingsButMatches) {
  const Dataset original = toy_dataset(400, 8, 82);
  save_dataset(original, path("scalars"));
  const DatasetScalars scalars = load_dataset_scalars(path("scalars"));
  EXPECT_EQ(scalars.labels, original.labels);
  EXPECT_EQ(scalars.utilities, original.utilities);
}

TEST_F(DatasetIoTest, ScalarsLoadRejectsWrongMagic) {
  {
    std::ofstream out(path("notdata"), std::ios::binary);
    out << "nope";
  }
  EXPECT_THROW(load_dataset_scalars(path("notdata")), std::runtime_error);
}

TEST_F(DatasetIoTest, SubsetRoundTrip) {
  const std::vector<graph::NodeId> ids{0, 5, 17, 100000, 123456789};
  save_subset(ids, path("subset.ids"));
  EXPECT_EQ(load_subset(path("subset.ids")), ids);
}

TEST_F(DatasetIoTest, EmptySubsetRoundTrip) {
  save_subset({}, path("empty.ids"));
  EXPECT_TRUE(load_subset(path("empty.ids")).empty());
}

TEST_F(DatasetIoTest, SaveCreatesParentDirectories) {
  const Dataset original = toy_dataset(100, 4, 81);
  const std::string nested = path("a/b/c/data");
  save_dataset(original, nested);
  EXPECT_TRUE(std::filesystem::exists(nested));
  EXPECT_TRUE(std::filesystem::exists(nested + ".graph"));
}

}  // namespace
}  // namespace subsel::data
