#include "data/synthetic.h"

#include <gtest/gtest.h>

#include "data/utility_model.h"
#include "graph/embedding_matrix.h"

namespace subsel::data {
namespace {

ClusteredEmbeddingConfig small_config() {
  ClusteredEmbeddingConfig config;
  config.num_points = 500;
  config.dim = 16;
  config.num_classes = 10;
  config.seed = 5;
  return config;
}

TEST(ClusteredEmbeddings, ShapesMatchConfig) {
  const auto data = generate_clustered_embeddings(small_config());
  EXPECT_EQ(data.points.rows(), 500u);
  EXPECT_EQ(data.points.dim(), 16u);
  EXPECT_EQ(data.centers.rows(), 10u);
  EXPECT_EQ(data.labels.size(), 500u);
  for (auto label : data.labels) EXPECT_LT(label, 10u);
}

TEST(ClusteredEmbeddings, RowsAreNormalized) {
  const auto data = generate_clustered_embeddings(small_config());
  for (std::size_t i = 0; i < data.points.rows(); ++i) {
    EXPECT_NEAR(graph::dot(data.points.row(i), data.points.row(i)), 1.0f, 1e-4f);
  }
}

TEST(ClusteredEmbeddings, DeterministicForFixedSeed) {
  const auto a = generate_clustered_embeddings(small_config());
  const auto b = generate_clustered_embeddings(small_config());
  EXPECT_EQ(a.labels, b.labels);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(a.points.row(i)[0], b.points.row(i)[0]);
  }
}

TEST(ClusteredEmbeddings, SeedChangesData) {
  auto config = small_config();
  const auto a = generate_clustered_embeddings(config);
  config.seed = 6;
  const auto b = generate_clustered_embeddings(config);
  EXPECT_NE(a.points.row(0)[0], b.points.row(0)[0]);
}

TEST(ClusteredEmbeddings, SameClassPointsAreMoreSimilar) {
  const auto data = generate_clustered_embeddings(small_config());
  double intra = 0.0, inter = 0.0;
  int intra_count = 0, inter_count = 0;
  for (std::size_t i = 0; i < 100; ++i) {
    for (std::size_t j = i + 1; j < 100; ++j) {
      const float sim = graph::dot(data.points.row(i), data.points.row(j));
      if (data.labels[i] == data.labels[j]) {
        intra += sim;
        ++intra_count;
      } else {
        inter += sim;
        ++inter_count;
      }
    }
  }
  ASSERT_GT(intra_count, 0);
  ASSERT_GT(inter_count, 0);
  EXPECT_GT(intra / intra_count, inter / inter_count + 0.2);
}

TEST(ClusteredEmbeddings, RejectsEmptyConfig) {
  ClusteredEmbeddingConfig config;
  config.num_classes = 0;
  EXPECT_THROW(generate_clustered_embeddings(config), std::invalid_argument);
}

TEST(CoarseClassifier, ProbabilitiesFormDistribution) {
  const auto data = generate_clustered_embeddings(small_config());
  CoarseClassifier classifier(data.centers, CoarseClassifierConfig{});
  const auto probs = classifier.predict(data.points.row(0));
  ASSERT_EQ(probs.size(), 10u);
  double total = 0.0;
  for (double p : probs) {
    EXPECT_GE(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(CoarseClassifier, MostlyPredictsTrueClass) {
  const auto data = generate_clustered_embeddings(small_config());
  CoarseClassifierConfig config;
  config.center_noise = 0.05;  // mild coarseness
  CoarseClassifier classifier(data.centers, config);
  int correct = 0;
  for (std::size_t i = 0; i < 200; ++i) {
    const auto probs = classifier.predict(data.points.row(i));
    const auto argmax = static_cast<std::uint32_t>(
        std::max_element(probs.begin(), probs.end()) - probs.begin());
    correct += (argmax == data.labels[i]);
  }
  EXPECT_GT(correct, 150);
}

TEST(MarginUtilities, InZeroOneBeforeCenteringAndNonNegativeAfter) {
  const auto data = generate_clustered_embeddings(small_config());
  CoarseClassifier classifier(data.centers, CoarseClassifierConfig{});
  for (std::size_t i = 0; i < 50; ++i) {
    const double u = classifier.margin_utility(data.points.row(i));
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
  const auto utilities = compute_margin_utilities(data.points, classifier);
  ASSERT_EQ(utilities.size(), 500u);
  const double minimum = *std::min_element(utilities.begin(), utilities.end());
  EXPECT_DOUBLE_EQ(minimum, 0.0);  // centered
}

TEST(CenterUtilities, SubtractsMinimum) {
  std::vector<double> utilities{3.0, 1.0, 2.0};
  center_utilities(utilities);
  EXPECT_EQ(utilities, (std::vector<double>{2.0, 0.0, 1.0}));
  std::vector<double> empty;
  center_utilities(empty);  // no-op, must not crash
}

TEST(MarginUtilities, BoundaryPointsScoreHigherThanCores) {
  // A point exactly at a class center has near-zero margin utility; a point
  // between two centers has high utility.
  const auto data = generate_clustered_embeddings(small_config());
  CoarseClassifierConfig config;
  config.center_noise = 0.0;
  CoarseClassifier classifier(data.centers, config);

  const double core = classifier.margin_utility(data.centers.row(0));
  graph::EmbeddingMatrix between(1, 16);
  for (std::size_t d = 0; d < 16; ++d) {
    between.row(0)[d] = data.centers.row(0)[d] + data.centers.row(1)[d];
  }
  between.normalize_rows();
  const double boundary = classifier.margin_utility(between.row(0));
  EXPECT_GT(boundary, core);
}

}  // namespace
}  // namespace subsel::data
