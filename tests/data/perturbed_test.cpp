#include "data/perturbed.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <map>

namespace subsel::data {
namespace {

using graph::Edge;
using graph::NodeId;

class PerturbedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cache_dir_ = std::filesystem::temp_directory_path() / "subsel_perturbed_test";
    std::filesystem::create_directories(cache_dir_);
    setenv("SUBSEL_CACHE_DIR", cache_dir_.c_str(), 1);
    base_ = toy_dataset(64, 4, 17);
  }
  void TearDown() override {
    unsetenv("SUBSEL_CACHE_DIR");
    std::filesystem::remove_all(cache_dir_);
  }

  PerturbedConfig config(std::size_t p = 20) {
    PerturbedConfig c;
    c.perturbations_per_point = p;
    c.ring_radius = 3;
    return c;
  }

  std::filesystem::path cache_dir_;
  Dataset base_;
};

TEST_F(PerturbedTest, CardinalityIsBaseTimesP) {
  PerturbedGroundSet ground_set(base_, config(20));
  EXPECT_EQ(ground_set.num_points(), 64u * 20u);
}

TEST_F(PerturbedTest, UtilitiesTrackBaseUtility) {
  PerturbedGroundSet ground_set(base_, config(20));
  for (NodeId v : {NodeId{0}, NodeId{25}, NodeId{640}, NodeId{1279}}) {
    const auto group = static_cast<std::size_t>(v) / 20;
    EXPECT_NEAR(ground_set.utility(v), base_.utilities[group], 0.05 + 1e-12);
    EXPECT_GE(ground_set.utility(v), 0.0);
  }
}

TEST_F(PerturbedTest, UtilityIsDeterministic) {
  PerturbedGroundSet ground_set(base_, config(20));
  EXPECT_EQ(ground_set.utility(123), ground_set.utility(123));
}

TEST_F(PerturbedTest, RingNeighborsHaveExpectedDegree) {
  PerturbedGroundSet ground_set(base_, config(20));
  std::vector<Edge> neighbors;
  // Non-leader point: exactly 2*radius ring neighbors.
  ground_set.neighbors(21, neighbors);  // group 1, offset 1
  EXPECT_EQ(neighbors.size(), 6u);
  EXPECT_EQ(ground_set.degree(21), 6u);
  // Leader point: ring + base-graph degree.
  ground_set.neighbors(20, neighbors);  // group 1, offset 0
  EXPECT_EQ(neighbors.size(), 6u + base_.graph.degree(1));
  EXPECT_EQ(ground_set.degree(20), neighbors.size());
}

TEST_F(PerturbedTest, NeighborhoodIsSymmetricWithEqualWeights) {
  PerturbedGroundSet ground_set(base_, config(20));
  std::vector<Edge> neighbors, reverse;
  for (NodeId v : {NodeId{0}, NodeId{5}, NodeId{20}, NodeId{399}, NodeId{1000}}) {
    ground_set.neighbors(v, neighbors);
    for (const Edge& e : neighbors) {
      ground_set.neighbors(e.neighbor, reverse);
      bool found = false;
      for (const Edge& r : reverse) {
        if (r.neighbor == v) {
          found = true;
          EXPECT_FLOAT_EQ(r.weight, e.weight);
        }
      }
      EXPECT_TRUE(found) << "edge " << v << " -> " << e.neighbor << " not symmetric";
    }
  }
}

TEST_F(PerturbedTest, NoSelfLoopsOrDuplicates) {
  PerturbedGroundSet ground_set(base_, config(20));
  std::vector<Edge> neighbors;
  for (NodeId v = 0; v < 200; ++v) {
    ground_set.neighbors(v, neighbors);
    std::map<NodeId, int> counts;
    for (const Edge& e : neighbors) {
      EXPECT_NE(e.neighbor, v);
      EXPECT_GE(e.weight, 0.0f);
      EXPECT_LT(e.neighbor, static_cast<NodeId>(ground_set.num_points()));
      ++counts[e.neighbor];
    }
    for (const auto& [id, count] : counts) EXPECT_EQ(count, 1) << "dup " << id;
  }
}

TEST_F(PerturbedTest, LeaderEdgesPreserveBaseGraph) {
  PerturbedGroundSet ground_set(base_, config(20));
  std::vector<Edge> neighbors;
  ground_set.neighbors(0, neighbors);  // leader of group 0
  std::size_t leader_edges = 0;
  for (const Edge& e : neighbors) {
    if (static_cast<std::size_t>(e.neighbor) % 20 == 0) {
      const auto target_group = static_cast<NodeId>(e.neighbor / 20);
      if (target_group != 0) {
        // Must correspond to a base edge with the same weight.
        bool found = false;
        for (const Edge& base_edge : base_.graph.neighbors(0)) {
          if (base_edge.neighbor == target_group) {
            found = true;
            EXPECT_FLOAT_EQ(base_edge.weight, e.weight);
          }
        }
        EXPECT_TRUE(found);
        ++leader_edges;
      }
    }
  }
  EXPECT_EQ(leader_edges, base_.graph.degree(0));
}

TEST_F(PerturbedTest, DisablingLeaderEdgesRemovesThem) {
  auto c = config(20);
  c.connect_group_leaders = false;
  PerturbedGroundSet ground_set(base_, c);
  std::vector<Edge> neighbors;
  ground_set.neighbors(0, neighbors);
  EXPECT_EQ(neighbors.size(), 6u);
}

TEST_F(PerturbedTest, MaterializedBytesScaleWithP) {
  PerturbedGroundSet small(base_, config(20));
  PerturbedGroundSet large(base_, config(200));
  EXPECT_GT(large.bytes_if_materialized(), 9 * small.bytes_if_materialized());
}

TEST_F(PerturbedTest, RejectsInvalidConfig) {
  PerturbedConfig c;
  c.perturbations_per_point = 0;
  EXPECT_THROW(PerturbedGroundSet(base_, c), std::invalid_argument);
  c.perturbations_per_point = 6;
  c.ring_radius = 3;  // 2*radius == P: ring would wrap
  EXPECT_THROW(PerturbedGroundSet(base_, c), std::invalid_argument);
}

}  // namespace
}  // namespace subsel::data
