// The systems invariant of the paper: no worker ever needs the whole dataset
// resident. These tests verify that the pipeline's per-worker budget is
// actually enforced and that sharding keeps per-worker peaks ~1/num_shards of
// the data.
#include <gtest/gtest.h>

#include "dataflow/transforms.h"

namespace subsel::dataflow {
namespace {

TEST(MemoryBudget, PeakShardBytesTracksLargestShard) {
  PipelineOptions options;
  options.num_shards = 10;
  Pipeline pipeline(options);
  const auto pc = from_generator<std::int64_t>(
      pipeline, 1000, [](std::size_t i) { return static_cast<std::int64_t>(i); });
  (void)pc;
  // 100 int64 per shard = 800 bytes.
  EXPECT_GE(pipeline.peak_shard_bytes(), 800u);
  EXPECT_LT(pipeline.peak_shard_bytes(), 8000u);
}

TEST(MemoryBudget, MoreShardsLowerPeak) {
  auto peak_with_shards = [](std::size_t shards) {
    PipelineOptions options;
    options.num_shards = shards;
    Pipeline pipeline(options);
    const auto pc = from_generator<std::int64_t>(
        pipeline, 10'000, [](std::size_t i) { return static_cast<std::int64_t>(i); });
    const auto mapped = map<std::int64_t>(pc, [](std::int64_t v) { return v + 1; });
    (void)mapped;
    return pipeline.peak_shard_bytes();
  };
  EXPECT_GT(peak_with_shards(2), 2 * peak_with_shards(16));
}

TEST(MemoryBudget, ExceedingBudgetThrows) {
  PipelineOptions options;
  options.num_shards = 2;
  options.worker_memory_bytes = 100;  // far below one shard of 5000 int64
  Pipeline pipeline(options);
  EXPECT_THROW(from_generator<std::int64_t>(
                   pipeline, 10'000,
                   [](std::size_t i) { return static_cast<std::int64_t>(i); }),
               PipelineMemoryError);
}

TEST(MemoryBudget, SufficientBudgetDoesNotThrow) {
  PipelineOptions options;
  options.num_shards = 64;
  options.worker_memory_bytes = 64 * 1024;
  Pipeline pipeline(options);
  const auto pc = from_generator<std::int64_t>(
      pipeline, 100'000, [](std::size_t i) { return static_cast<std::int64_t>(i); });
  // A whole-dataset working set (800 KB) would exceed the 64 KB budget; the
  // sharded pipeline stays within it.
  const auto grouped = group_by_key(
      map<std::pair<std::int64_t, std::int64_t>>(
          pc, [](std::int64_t v) { return std::make_pair(v % 1024, v); }));
  EXPECT_EQ(grouped.size(), 1024u);
  EXPECT_LE(pipeline.peak_shard_bytes(), 64u * 1024u);
}

TEST(MemoryBudget, ErrorCarriesDiagnostics) {
  PipelineOptions options;
  options.num_shards = 1;
  options.worker_memory_bytes = 8;
  Pipeline pipeline(options);
  try {
    from_generator<std::int64_t>(pipeline, 100, [](std::size_t i) {
      return static_cast<std::int64_t>(i);
    });
    FAIL() << "expected PipelineMemoryError";
  } catch (const PipelineMemoryError& e) {
    EXPECT_EQ(e.budget_bytes, 8u);
    EXPECT_GE(e.needed_bytes, 800u);
  }
}

TEST(ApproxBytes, AccountsForNestedContainers) {
  const std::vector<std::vector<int>> nested{{1, 2, 3}, {4}};
  EXPECT_GE(approx_bytes(nested), 4 * sizeof(int));
  const std::pair<std::int64_t, std::vector<double>> kv{1, {1.0, 2.0}};
  EXPECT_GE(approx_bytes(kv), sizeof(std::int64_t) + 2 * sizeof(double));
  const std::string text = "hello world, a string with some length";
  EXPECT_GE(approx_bytes(text), text.size());
}

}  // namespace
}  // namespace subsel::dataflow
