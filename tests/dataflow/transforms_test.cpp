#include "dataflow/transforms.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>

#include "common/rng.h"

namespace subsel::dataflow {
namespace {

using KV = std::pair<std::int64_t, std::int64_t>;

Pipeline make_pipeline(std::size_t shards = 8) {
  PipelineOptions options;
  options.num_shards = shards;
  return Pipeline(options);
}

TEST(FromVector, PreservesAllElements) {
  Pipeline pipeline = make_pipeline(4);
  std::vector<int> values(100);
  std::iota(values.begin(), values.end(), 0);
  const auto pc = from_vector(pipeline, values);
  EXPECT_EQ(pc.size(), 100u);
  EXPECT_EQ(to_vector(pc), values);  // contiguous sharding keeps order
}

TEST(FromVector, HandlesFewerElementsThanShards) {
  Pipeline pipeline = make_pipeline(16);
  const auto pc = from_vector(pipeline, std::vector<int>{1, 2, 3});
  EXPECT_EQ(pc.size(), 3u);
  EXPECT_EQ(to_vector(pc), (std::vector<int>{1, 2, 3}));
}

TEST(FromGenerator, GeneratesIndexFunction) {
  Pipeline pipeline = make_pipeline(4);
  const auto pc = from_generator<std::int64_t>(
      pipeline, 1000, [](std::size_t i) { return static_cast<std::int64_t>(i * i); });
  const auto values = to_vector(pc);
  ASSERT_EQ(values.size(), 1000u);
  for (std::size_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(values[i], static_cast<std::int64_t>(i * i));
  }
}

TEST(Map, AppliesFunction) {
  Pipeline pipeline = make_pipeline();
  const auto pc = from_generator<int>(pipeline, 50, [](std::size_t i) {
    return static_cast<int>(i);
  });
  const auto doubled = map<int>(pc, [](int v) { return 2 * v; });
  const auto values = to_vector(doubled);
  for (std::size_t i = 0; i < 50; ++i) EXPECT_EQ(values[i], 2 * static_cast<int>(i));
}

TEST(FlatMap, CanEmitZeroOrMany) {
  Pipeline pipeline = make_pipeline();
  const auto pc = from_generator<int>(pipeline, 10, [](std::size_t i) {
    return static_cast<int>(i);
  });
  const auto expanded = flat_map<int>(pc, [](int v, auto emit) {
    for (int copy = 0; copy < v % 3; ++copy) emit(v);
  });
  // i contributes (i % 3) copies: total = sum over 0..9 of i%3 = 9.
  EXPECT_EQ(expanded.size(), 9u);
}

TEST(Filter, KeepsMatchingElements) {
  Pipeline pipeline = make_pipeline();
  const auto pc = from_generator<int>(pipeline, 100, [](std::size_t i) {
    return static_cast<int>(i);
  });
  const auto even = filter(pc, [](int v) { return v % 2 == 0; });
  const auto values = to_vector(even);
  EXPECT_EQ(values.size(), 50u);
  for (int v : values) EXPECT_EQ(v % 2, 0);
}

TEST(Flatten, ConcatenatesCollections) {
  Pipeline pipeline = make_pipeline();
  const auto a = from_vector(pipeline, std::vector<int>{1, 2});
  const auto b = from_vector(pipeline, std::vector<int>{3, 4, 5});
  const auto both = flatten(a, b);
  auto values = to_vector(both);
  std::sort(values.begin(), values.end());
  EXPECT_EQ(values, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(GroupByKey, GroupsAllValuesOfAKey) {
  Pipeline pipeline = make_pipeline();
  std::vector<KV> records;
  for (std::int64_t i = 0; i < 100; ++i) records.push_back({i % 7, i});
  const auto grouped = group_by_key(from_vector(pipeline, records));
  const auto rows = to_vector(grouped);
  ASSERT_EQ(rows.size(), 7u);
  std::map<std::int64_t, std::size_t> sizes;
  for (const auto& [key, values] : rows) {
    sizes[key] = values.size();
    for (std::int64_t v : values) EXPECT_EQ(v % 7, key);
  }
  for (std::int64_t key = 0; key < 7; ++key) {
    EXPECT_EQ(sizes[key], key < 100 % 7 ? 15u : 14u);
  }
}

TEST(GroupByKey, EachKeyAppearsInExactlyOneShard) {
  Pipeline pipeline = make_pipeline(8);
  std::vector<KV> records;
  for (std::int64_t i = 0; i < 200; ++i) records.push_back({i % 31, i});
  const auto grouped = group_by_key(from_vector(pipeline, records));
  std::map<std::int64_t, int> appearances;
  for (std::size_t s = 0; s < grouped.num_shards(); ++s) {
    for (const auto& row : grouped.shard(s)) ++appearances[row.first];
  }
  EXPECT_EQ(appearances.size(), 31u);
  for (const auto& [key, count] : appearances) EXPECT_EQ(count, 1) << key;
}

TEST(GroupByKey, DeterministicAcrossRuns) {
  auto run = [] {
    Pipeline pipeline = make_pipeline(8);
    std::vector<KV> records;
    Rng rng(5);
    for (int i = 0; i < 500; ++i) {
      records.push_back({static_cast<std::int64_t>(rng.uniform_index(40)),
                         static_cast<std::int64_t>(i)});
    }
    return to_vector(group_by_key(from_vector(pipeline, records)));
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].first, b[i].first);
    EXPECT_EQ(a[i].second, b[i].second);
  }
}

TEST(CoGroupByKey2, JoinsBothSides) {
  Pipeline pipeline = make_pipeline();
  const auto left = from_vector(
      pipeline, std::vector<KV>{{1, 10}, {2, 20}, {2, 21}, {3, 30}});
  const auto right = from_vector(
      pipeline, std::vector<std::pair<std::int64_t, double>>{{2, 0.2}, {4, 0.4}});
  const auto joined = co_group_by_key(left, right);
  const auto rows = to_vector(joined);
  ASSERT_EQ(rows.size(), 4u);  // keys 1, 2, 3, 4
  std::map<std::int64_t, std::pair<std::size_t, std::size_t>> shape;
  for (const auto& row : rows) {
    shape[row.key] = {row.left.size(), row.right.size()};
  }
  EXPECT_EQ(shape[1], std::make_pair(std::size_t{1}, std::size_t{0}));
  EXPECT_EQ(shape[2], std::make_pair(std::size_t{2}, std::size_t{1}));
  EXPECT_EQ(shape[3], std::make_pair(std::size_t{1}, std::size_t{0}));
  EXPECT_EQ(shape[4], std::make_pair(std::size_t{0}, std::size_t{1}));
}

TEST(CoGroupByKey3, JoinsThreeSides) {
  Pipeline pipeline = make_pipeline();
  const auto a = from_vector(pipeline, std::vector<KV>{{1, 10}, {2, 20}});
  const auto b = from_vector(
      pipeline, std::vector<std::pair<std::int64_t, float>>{{2, 2.0f}});
  const auto c = from_vector(
      pipeline, std::vector<std::pair<std::int64_t, std::int64_t>>{{1, -1}, {3, -3}});
  const auto joined = co_group_by_key(a, b, c);
  const auto rows = to_vector(joined);
  ASSERT_EQ(rows.size(), 3u);
  for (const auto& row : rows) {
    if (row.key == 1) {
      EXPECT_EQ(row.first.size(), 1u);
      EXPECT_EQ(row.second.size(), 0u);
      EXPECT_EQ(row.third.size(), 1u);
    } else if (row.key == 2) {
      EXPECT_EQ(row.first.size(), 1u);
      EXPECT_EQ(row.second.size(), 1u);
      EXPECT_EQ(row.third.size(), 0u);
    } else {
      EXPECT_EQ(row.key, 3);
      EXPECT_EQ(row.third.size(), 1u);
    }
  }
}

TEST(Sum, ComputesGlobalSum) {
  Pipeline pipeline = make_pipeline();
  const auto pc = from_generator<double>(pipeline, 1000, [](std::size_t i) {
    return static_cast<double>(i);
  });
  EXPECT_DOUBLE_EQ(sum(pc), 999.0 * 1000.0 / 2.0);
}

TEST(KthLargestDistributed, MatchesInMemorySelection) {
  Pipeline pipeline = make_pipeline();
  Rng rng(9);
  std::vector<double> values(5000);
  for (double& v : values) v = rng.uniform(-100, 100);
  const auto pc = from_vector(pipeline, values);

  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  for (std::size_t k : {1u, 2u, 100u, 2500u, 5000u}) {
    EXPECT_EQ(kth_largest_distributed(pc, k), sorted[k - 1]) << "k=" << k;
  }
}

TEST(KthLargestDistributed, EdgeCases) {
  Pipeline pipeline = make_pipeline();
  const auto pc = from_vector(pipeline, std::vector<double>{1.0, -2.0, 3.0});
  EXPECT_EQ(kth_largest_distributed(pc, 0), std::numeric_limits<double>::infinity());
  EXPECT_EQ(kth_largest_distributed(pc, 4), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(kth_largest_distributed(pc, 1), 3.0);
  EXPECT_EQ(kth_largest_distributed(pc, 3), -2.0);
}

TEST(KthLargestDistributed, HandlesDuplicatesAndNegatives) {
  Pipeline pipeline = make_pipeline();
  const auto pc = from_vector(
      pipeline, std::vector<double>{-1.0, -1.0, -1.0, 0.0, 0.0, 2.5, 2.5});
  EXPECT_EQ(kth_largest_distributed(pc, 2), 2.5);
  EXPECT_EQ(kth_largest_distributed(pc, 3), 0.0);
  EXPECT_EQ(kth_largest_distributed(pc, 7), -1.0);
}

TEST(Counters, AccumulateAcrossIncrements) {
  Pipeline pipeline = make_pipeline();
  pipeline.increment_counter("events");
  pipeline.increment_counter("events", 4);
  EXPECT_EQ(pipeline.counter("events"), 5u);
  EXPECT_EQ(pipeline.counter("missing"), 0u);
}

TEST(Pipeline, RejectsZeroShards) {
  PipelineOptions options;
  options.num_shards = 0;
  EXPECT_THROW(Pipeline pipeline(options), std::invalid_argument);
}

}  // namespace
}  // namespace subsel::dataflow
