// Fault injection: shard tasks are declared lost after their side effects
// ran and must be re-executed idempotently — the contract real dataflow
// runners (Beam/Flume/Spark) impose on ParDo workers. These tests verify
// (1) every transform produces identical output with and without injected
// faults, (2) retries are counted, (3) the retry budget is enforced, and
// (4) the full Section-5 bounding pipeline survives a lossy "cluster".
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "../testing/test_instances.h"
#include "beam/beam_bounding.h"
#include "beam/beam_greedy.h"
#include "beam/beam_scoring.h"
#include "dataflow/transforms.h"

namespace subsel::dataflow {
namespace {

using subsel::testing::Instance;
using subsel::testing::random_instance;

PipelineOptions faulty_options(double probability, std::size_t shards = 16,
                               std::size_t attempts = 6) {
  PipelineOptions options;
  options.num_shards = shards;
  options.shard_failure_probability = probability;
  options.max_shard_attempts = attempts;
  return options;
}

TEST(FaultInjection, MapAndFilterSurviveFaults) {
  Pipeline clean;
  Pipeline faulty(faulty_options(0.3, 32));
  std::vector<std::int64_t> input(5000);
  std::iota(input.begin(), input.end(), 0);

  auto run = [&](Pipeline& pipeline) {
    auto values = from_vector(pipeline, input);
    auto squares = map<std::int64_t>(values, [](std::int64_t v) { return v * v; });
    auto odd = filter(squares, [](std::int64_t v) { return v % 2 == 1; });
    return to_vector(odd);
  };
  EXPECT_EQ(run(clean), run(faulty));
  EXPECT_GT(faulty.counter("shard_retries"), 0u);
  EXPECT_EQ(clean.counter("shard_retries"), 0u);
}

TEST(FaultInjection, GroupByKeySurvivesFaults) {
  Pipeline clean;
  Pipeline faulty(faulty_options(0.3));
  auto run = [&](Pipeline& pipeline) {
    auto records = from_generator<std::pair<std::uint64_t, std::uint64_t>>(
        pipeline, 4000, [](std::size_t i) {
          return std::pair<std::uint64_t, std::uint64_t>{i % 97, i};
        });
    auto grouped = group_by_key(records);
    auto sums = map<std::uint64_t>(grouped, [](const auto& row) {
      return std::accumulate(row.second.begin(), row.second.end(),
                             std::uint64_t{0});
    });
    auto all = to_vector(sums);
    std::sort(all.begin(), all.end());
    return all;
  };
  EXPECT_EQ(run(clean), run(faulty));
}

TEST(FaultInjection, ThreeWayJoinSurvivesFaults) {
  Pipeline clean;
  Pipeline faulty(faulty_options(0.25));
  auto run = [&](Pipeline& pipeline) {
    auto a = from_generator<std::pair<std::uint64_t, std::uint64_t>>(
        pipeline, 1000, [](std::size_t i) {
          return std::pair<std::uint64_t, std::uint64_t>{i % 50, i};
        });
    auto b = from_generator<std::pair<std::uint64_t, double>>(
        pipeline, 500, [](std::size_t i) {
          return std::pair<std::uint64_t, double>{i % 50, 0.5 * static_cast<double>(i)};
        });
    auto c = from_generator<std::pair<std::uint64_t, std::uint8_t>>(
        pipeline, 25, [](std::size_t i) {
          return std::pair<std::uint64_t, std::uint8_t>{i, std::uint8_t{1}};
        });
    auto joined = co_group_by_key(a, b, c);
    auto sizes = map<std::uint64_t>(joined, [](const auto& row) {
      return (row.key << 16) | (row.first.size() << 8) | (row.second.size() << 4) |
             row.third.size();
    });
    auto all = to_vector(sizes);
    std::sort(all.begin(), all.end());
    return all;
  };
  EXPECT_EQ(run(clean), run(faulty));
}

TEST(FaultInjection, KthLargestDistributedSurvivesFaults) {
  // The binary search dispatches ~64 x num_shards tasks; give the retry
  // budget enough headroom that exhaustion odds are negligible (0.2^10).
  Pipeline clean;
  Pipeline faulty(faulty_options(0.2, 16, 10));
  auto run = [&](Pipeline& pipeline) {
    auto values = from_generator<double>(pipeline, 3000, [](std::size_t i) {
      return std::sin(static_cast<double>(i));
    });
    return kth_largest_distributed(values, 500);
  };
  EXPECT_EQ(run(clean), run(faulty));
}

TEST(FaultInjection, RetryBudgetExhaustionThrows) {
  // probability 1: every attempt fails -> deterministic PipelineFaultError.
  Pipeline pipeline(faulty_options(1.0, 4, 3));
  std::vector<int> input{1, 2, 3, 4};
  EXPECT_THROW(
      {
        auto values = from_vector(pipeline, input);
        auto doubled = map<int>(values, [](int v) { return 2 * v; });
        (void)to_vector(doubled);
      },
      PipelineFaultError);
  EXPECT_GE(pipeline.counter("shard_retries"), 2u);
}

TEST(FaultInjection, FaultPatternIsDeterministicGivenSeed) {
  std::vector<std::uint64_t> retry_counts;
  for (int run = 0; run < 2; ++run) {
    Pipeline pipeline(faulty_options(0.4));
    auto values = from_generator<int>(pipeline, 1000,
                                      [](std::size_t i) { return static_cast<int>(i); });
    (void)sum(values);
    retry_counts.push_back(pipeline.counter("shard_retries"));
  }
  EXPECT_EQ(retry_counts[0], retry_counts[1]);
  EXPECT_GT(retry_counts[0], 0u);
}

TEST(FaultInjection, BeamBoundingIdenticalUnderFaults) {
  // The headline property: the Section-5 bounding pipeline produces the
  // exact same grow/shrink decisions on a lossy cluster.
  const Instance instance = random_instance(120, 5, 930);
  const auto ground_set = instance.ground_set();

  beam::BoundingConfig config;
  config.objective = core::ObjectiveParams::from_alpha(0.9);
  config.sampling = core::BoundingSampling::kUniform;
  config.sample_fraction = 0.3;

  // Dozens of grow/shrink passes -> thousands of shard tasks; see the
  // headroom note in KthLargestDistributedSurvivesFaults.
  Pipeline clean;
  Pipeline faulty(faulty_options(0.2, 16, 10));
  const auto reference = beam::beam_bound(clean, ground_set, 20, config);
  const auto lossy = beam::beam_bound(faulty, ground_set, 20, config);

  EXPECT_EQ(lossy.state.selected_ids(), reference.state.selected_ids());
  EXPECT_EQ(lossy.state.unassigned_ids(), reference.state.unassigned_ids());
  EXPECT_EQ(lossy.grow_rounds, reference.grow_rounds);
  EXPECT_EQ(lossy.shrink_rounds, reference.shrink_rounds);
  EXPECT_GT(faulty.counter("shard_retries"), 0u);
}

TEST(FaultInjection, BeamGreedyIdenticalUnderFaults) {
  const Instance instance = random_instance(300, 4, 931);
  const auto ground_set = instance.ground_set();

  beam::BeamGreedyConfig config;
  config.objective = core::ObjectiveParams::from_alpha(0.9);
  config.num_machines = 8;
  config.num_rounds = 3;

  Pipeline clean;
  Pipeline faulty(faulty_options(0.2, 16, 10));
  const auto reference = beam::beam_distributed_greedy(clean, ground_set, 30, config);
  const auto lossy = beam::beam_distributed_greedy(faulty, ground_set, 30, config);
  EXPECT_EQ(lossy.selected, reference.selected);
}

TEST(FaultInjection, BeamScoringIdenticalUnderFaults) {
  const Instance instance = random_instance(200, 5, 932);
  const auto ground_set = instance.ground_set();
  std::vector<core::NodeId> subset;
  for (core::NodeId v = 0; v < 200; v += 3) subset.push_back(v);

  Pipeline clean;
  Pipeline faulty(faulty_options(0.25));
  const auto params = core::ObjectiveParams::from_alpha(0.9);
  EXPECT_EQ(beam::beam_score(faulty, ground_set, subset, params),
            beam::beam_score(clean, ground_set, subset, params));
}

}  // namespace
}  // namespace subsel::dataflow
