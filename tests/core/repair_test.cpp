// repair_selection conformance: fixpoint on unmutated selections, the
// delete-of-selected-is-always-repaired guarantee, modular-objective
// equivalence with solving from scratch, the (1-1/e)-style quality bound of
// the greedy top-up against a from-scratch re-solve, constraint feasibility
// of every repaired selection, and deadline degradation.
#include "core/repair.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <optional>
#include <string>
#include <vector>

#include "../testing/constraint_oracle.h"
#include "../testing/property.h"
#include "../testing/test_instances.h"
#include "common/run_control.h"
#include "core/greedy.h"
#include "core/objective_kernel.h"
#include "graph/overlay_ground_set.h"

namespace subsel::core {
namespace {

using subsel::testing::check_property;
using subsel::testing::feasibility_violation;
using subsel::testing::Instance;
using subsel::testing::random_constraints;
using subsel::testing::random_instance;
using subsel::testing::scaled;

std::vector<NodeId> all_ids(std::size_t n) {
  std::vector<NodeId> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = static_cast<NodeId>(i);
  return ids;
}

GreedyResult solve_all(const graph::GroundSet& ground_set,
                       const ObjectiveKernel& kernel, std::size_t k,
                       const ConstraintSet* constraints = nullptr) {
  SubproblemArena arena;
  return solve_partition(ground_set, all_ids(ground_set.num_points()), k,
                         kernel, nullptr, arena,
                         PartitionSolver::kPriorityQueue, 0.1, 1, nullptr,
                         nullptr, GainEngine::kAuto, constraints);
}

TEST(RepairSelection, UnmutatedUnconstrainedRepairIsAFixpoint) {
  const Instance instance = random_instance(60, 4, 501);
  const auto ground_set = instance.ground_set();
  const auto params = ObjectiveParams::from_alpha(0.9);
  const PairwiseKernel kernel(ground_set, params);
  const GreedyResult greedy = solve_all(ground_set, kernel, 12);

  const RepairResult repaired = repair_selection(kernel, greedy.selected, 12);
  std::vector<NodeId> expected = greedy.selected;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(repaired.selected, expected);
  EXPECT_EQ(repaired.kept, 12u);
  EXPECT_EQ(repaired.dropped, 0u);
  EXPECT_EQ(repaired.added, 0u);
  EXPECT_FALSE(repaired.degraded);
}

TEST(RepairSelection, DeleteOfSelectedIsAlwaysRepaired) {
  check_property(
      "delete-of-selected repaired", 120,
      [](std::uint64_t seed, double scale) -> std::optional<std::string> {
        const std::size_t n = scaled(30, scale, 8);
        const std::size_t k = scaled(6, scale, 2);
        const Instance instance = random_instance(n, 3, seed);
        const auto base = instance.ground_set();
        graph::OverlayGroundSet overlay(base);
        const auto params = ObjectiveParams::from_alpha(0.9);
        const PairwiseKernel kernel(overlay, params);

        const GreedyResult greedy = solve_all(overlay, kernel, k);
        if (greedy.selected.size() != k) return "setup: greedy came up short";

        // Delete one of the selected points (seed-dependent choice).
        Rng rng(seed);
        const NodeId victim =
            greedy.selected[rng.uniform_index(greedy.selected.size())];
        overlay.erase(victim);

        const RepairResult repaired = repair_selection(kernel, greedy.selected, k);
        if (std::binary_search(repaired.selected.begin(),
                               repaired.selected.end(), victim)) {
          return "deleted id " + std::to_string(victim) +
                 " survived the repair";
        }
        for (const NodeId v : repaired.selected) {
          if (!overlay.is_live(v)) {
            return "repair selected dead id " + std::to_string(v);
          }
        }
        // n - 1 live points remain, so the top-up must restore full size.
        if (repaired.selected.size() != k) {
          return "repair returned " + std::to_string(repaired.selected.size()) +
                 " of k=" + std::to_string(k) + " with live points to spare";
        }
        if (repaired.kept != k - 1 || repaired.dropped != 1 ||
            repaired.added != 1) {
          return "expected kept=" + std::to_string(k - 1) +
                 " dropped=1 added=1, got kept=" + std::to_string(repaired.kept) +
                 " dropped=" + std::to_string(repaired.dropped) +
                 " added=" + std::to_string(repaired.added);
        }
        return std::nullopt;
      });
}

TEST(RepairSelection, ModularObjectiveRepairMatchesFromScratchExactly) {
  // With beta == 0 the objective is modular and greedy is exact, so repair
  // (keep + top-up) and a from-scratch solve must land on the same
  // objective even after deletions.
  check_property(
      "modular repair == from-scratch", 100,
      [](std::uint64_t seed, double scale) -> std::optional<std::string> {
        const std::size_t n = scaled(24, scale, 8);
        const std::size_t k = scaled(5, scale, 2);
        const Instance instance = random_instance(n, 3, seed);
        const auto base = instance.ground_set();
        graph::OverlayGroundSet overlay(base);
        const ObjectiveParams params{1.0, 0.0};
        const PairwiseKernel kernel(overlay, params);

        const GreedyResult greedy = solve_all(overlay, kernel, k);
        Rng rng(seed ^ 0xdead);
        overlay.erase(greedy.selected[rng.uniform_index(greedy.selected.size())]);

        const RepairResult repaired = repair_selection(kernel, greedy.selected, k);
        const GreedyResult scratch = solve_all(overlay, kernel, k);
        std::vector<NodeId> scratch_sorted = scratch.selected;
        std::sort(scratch_sorted.begin(), scratch_sorted.end());
        const double scratch_objective = kernel.evaluate(
            std::span<const NodeId>(scratch_sorted), nullptr);
        if (std::abs(repaired.objective - scratch_objective) > 1e-9) {
          return "repair objective " + std::to_string(repaired.objective) +
                 " != from-scratch " + std::to_string(scratch_objective);
        }
        return std::nullopt;
      });
}

TEST(RepairSelection, RepairStaysWithinGreedyBoundOfFromScratch) {
  // Submodular case: the top-up is conditioned greedy, so the repaired
  // objective tracks a from-scratch re-solve within the classic greedy
  // quality regime. The bound tested is deliberately loose ((1-1/e) of the
  // re-solve) — the conformance point is that repair never collapses.
  check_property(
      "repair within greedy bound of from-scratch", 120,
      [](std::uint64_t seed, double scale) -> std::optional<std::string> {
        const std::size_t n = scaled(28, scale, 8);
        const std::size_t k = scaled(6, scale, 2);
        const Instance instance = random_instance(n, 3, seed);
        const auto base = instance.ground_set();
        graph::OverlayGroundSet overlay(base);
        const auto params = ObjectiveParams::from_alpha(0.9);
        const PairwiseKernel kernel(overlay, params);

        const GreedyResult greedy = solve_all(overlay, kernel, k);
        std::vector<NodeId> picked = greedy.selected;
        std::sort(picked.begin(), picked.end());
        Rng rng(seed ^ 0xbeef);
        // Mutate: delete one selected and one unselected point.
        overlay.erase(greedy.selected[rng.uniform_index(greedy.selected.size())]);
        for (std::size_t attempts = 0; attempts < n; ++attempts) {
          const auto v = static_cast<NodeId>(rng.uniform_index(n));
          if (overlay.is_live(v) &&
              !std::binary_search(picked.begin(), picked.end(), v)) {
            overlay.erase(v);
            break;
          }
        }

        const RepairResult repaired = repair_selection(kernel, greedy.selected, k);
        const GreedyResult scratch = solve_all(overlay, kernel, k);
        std::vector<NodeId> scratch_sorted = scratch.selected;
        std::sort(scratch_sorted.begin(), scratch_sorted.end());
        const double scratch_objective = kernel.evaluate(
            std::span<const NodeId>(scratch_sorted), nullptr);
        if (repaired.objective < (1.0 - 1.0 / std::exp(1.0)) * scratch_objective - 1e-9) {
          return "repair objective " + std::to_string(repaired.objective) +
                 " fell below (1-1/e) of from-scratch " +
                 std::to_string(scratch_objective);
        }
        return std::nullopt;
      });
}

TEST(RepairSelection, ConstrainedRepairIsFeasibleAndDropsViolators) {
  check_property(
      "constrained repair feasibility", 120,
      [](std::uint64_t seed, double scale) -> std::optional<std::string> {
        const std::size_t n = scaled(20, scale, 8);
        const std::size_t k = scaled(6, scale, 2);
        const Instance instance = random_instance(n, 3, seed);
        const auto ground_set = instance.ground_set();
        const auto params = ObjectiveParams::from_alpha(0.9);
        const PairwiseKernel kernel(ground_set, params);

        // Select unconstrained, then impose constraints the selection was
        // never told about — repair must drop violators and top up.
        const GreedyResult greedy = solve_all(ground_set, kernel, k);
        Rng rng(seed ^ 0xfeed);
        const ConstraintSet constraints =
            subsel::testing::random_constraints(n, rng);

        RepairConfig config;
        config.constraints = &constraints;
        const RepairResult repaired =
            repair_selection(kernel, greedy.selected, k, config);
        const std::string violation =
            feasibility_violation(repaired.selected, constraints, k);
        if (!violation.empty()) return violation;
        if (repaired.kept + repaired.dropped != greedy.selected.size()) {
          return "kept+dropped != |previous|";
        }
        return std::nullopt;
      });
}

TEST(RepairSelection, ExpiredDeadlineDegradesToTheKeptPrefix) {
  const Instance instance = random_instance(40, 4, 777);
  const auto base = instance.ground_set();
  graph::OverlayGroundSet overlay(base);
  const auto params = ObjectiveParams::from_alpha(0.9);
  const PairwiseKernel kernel(overlay, params);
  const GreedyResult greedy = solve_all(overlay, kernel, 8);
  overlay.erase(greedy.selected[0]);

  RepairConfig config;
  config.deadline = Deadline::after_ms(0);  // already expired
  const RepairResult repaired =
      repair_selection(kernel, greedy.selected, 8, config);
  EXPECT_TRUE(repaired.degraded);
  EXPECT_FALSE(repaired.degraded_reason.empty());
  // The kept survivors are still a valid (smaller) selection.
  EXPECT_EQ(repaired.selected.size(), 7u);
  EXPECT_EQ(repaired.added, 0u);
  for (const NodeId v : repaired.selected) EXPECT_TRUE(overlay.is_live(v));
}

}  // namespace
}  // namespace subsel::core
