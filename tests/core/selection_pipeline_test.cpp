#include "core/selection_pipeline.h"

#include <gtest/gtest.h>

#include <set>

#include "../testing/test_instances.h"

namespace subsel::core {
namespace {

using testing::Instance;
using testing::random_instance;

SelectionPipelineConfig make_config(double alpha, bool use_bounding) {
  SelectionPipelineConfig config;
  config.objective = ObjectiveParams::from_alpha(alpha);
  config.use_bounding = use_bounding;
  config.bounding.sampling = BoundingSampling::kUniform;
  config.bounding.sample_fraction = 0.3;
  config.greedy.num_machines = 4;
  config.greedy.num_rounds = 2;
  return config;
}

TEST(SelectionPipeline, ReturnsExactlyK) {
  const Instance instance = random_instance(200, 5, 301);
  const auto ground_set = instance.ground_set();
  for (bool use_bounding : {false, true}) {
    const auto result = select_subset(ground_set, 30, make_config(0.9, use_bounding));
    EXPECT_EQ(result.selected.size(), 30u);
    std::set<NodeId> unique(result.selected.begin(), result.selected.end());
    EXPECT_EQ(unique.size(), 30u);
    EXPECT_EQ(result.bounding.has_value(), use_bounding);
  }
}

TEST(SelectionPipeline, BoundingStatsAreReported) {
  const Instance instance = random_instance(300, 6, 302);
  const auto ground_set = instance.ground_set();
  const auto result = select_subset(ground_set, 30, make_config(0.9, true));
  ASSERT_TRUE(result.bounding.has_value());
  EXPECT_GE(result.bounding->shrink_rounds, 1u);
  EXPECT_EQ(result.bounding->included + result.bounding->k_remaining, 30u);
  EXPECT_GE(result.bounding_seconds, 0.0);
}

TEST(SelectionPipeline, CompleteBoundingSkipsGreedy) {
  // Isolated points: exact bounding solves the whole instance.
  Instance instance;
  instance.graph =
      graph::SimilarityGraph::from_lists(std::vector<graph::NeighborList>(20));
  instance.utilities.resize(20);
  for (std::size_t i = 0; i < 20; ++i) instance.utilities[i] = static_cast<double>(i);
  const auto ground_set = instance.ground_set();

  auto config = make_config(0.9, true);
  config.bounding.sampling = BoundingSampling::kNone;
  const auto result = select_subset(ground_set, 5, config);
  ASSERT_TRUE(result.bounding.has_value());
  EXPECT_TRUE(result.bounding->complete());
  EXPECT_TRUE(result.greedy_rounds.empty());
  EXPECT_EQ(result.selected, (std::vector<NodeId>{15, 16, 17, 18, 19}));
}

TEST(SelectionPipeline, ObjectiveParamsPropagateToStages) {
  // A config whose stage params disagree with the top-level objective: the
  // top-level must win (documented behavior).
  const Instance instance = random_instance(100, 4, 303);
  const auto ground_set = instance.ground_set();
  auto config = make_config(0.5, true);
  config.bounding.objective = ObjectiveParams::from_alpha(0.1);  // overridden
  config.greedy.objective = ObjectiveParams::from_alpha(0.9);    // overridden
  const auto result = select_subset(ground_set, 10, config);
  PairwiseObjective objective(ground_set, ObjectiveParams::from_alpha(0.5));
  EXPECT_NEAR(result.objective, objective.evaluate(result.selected), 1e-9);
}

TEST(SelectionPipeline, ExpiredDeadlineDegradesBothStagesButStillSelectsK) {
  // Bounding stops at a pass boundary (its decisions are monotone, so
  // whatever it fixed stays sound) and the greedy falls through to the
  // final subsample: the caller gets a valid size-k selection, flagged.
  const Instance instance = random_instance(200, 5, 320);
  const auto ground_set = instance.ground_set();
  auto config = make_config(0.9, true);
  config.bounding.deadline = Deadline::after_ms(0);
  config.greedy.deadline = Deadline::after_ms(0);
  const auto result = select_subset(ground_set, 20, config);
  EXPECT_TRUE(result.degraded);
  EXPECT_FALSE(result.degraded_reason.empty());
  EXPECT_EQ(result.selected.size(), 20u);
  PairwiseObjective objective(ground_set, ObjectiveParams::from_alpha(0.9));
  EXPECT_NEAR(result.objective, objective.evaluate(result.selected), 1e-9);
}

TEST(SelectionPipeline, BoundingImprovesOrMatchesPureGreedyQuality) {
  // Statistical check over seeds; bounding should not systematically hurt.
  double with_bounding = 0.0, without = 0.0;
  for (std::uint64_t seed : {311, 312, 313, 314}) {
    const Instance instance = random_instance(250, 6, seed);
    const auto ground_set = instance.ground_set();
    with_bounding += select_subset(ground_set, 25, make_config(0.9, true)).objective;
    without += select_subset(ground_set, 25, make_config(0.9, false)).objective;
  }
  EXPECT_GE(with_bounding, 0.95 * without);
}

}  // namespace
}  // namespace subsel::core
