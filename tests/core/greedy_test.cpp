#include "core/greedy.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "../testing/test_instances.h"

namespace subsel::core {
namespace {

using testing::Instance;
using testing::brute_force_optimum;
using testing::random_instance;

TEST(CentralizedGreedy, PicksHighestUtilityWithoutEdges) {
  // No edges: greedy = top-k utilities.
  Instance instance;
  instance.graph = graph::SimilarityGraph::from_lists(
      std::vector<graph::NeighborList>(5));
  instance.utilities = {0.1, 0.9, 0.5, 0.7, 0.3};
  const auto result = centralized_greedy(instance.graph, instance.utilities,
                                         ObjectiveParams{0.9, 0.1}, 3);
  EXPECT_EQ(result.selected, (std::vector<NodeId>{1, 3, 2}));
  EXPECT_NEAR(result.objective, 0.9 * (0.9 + 0.7 + 0.5), 1e-12);
}

TEST(CentralizedGreedy, PenalizesNeighborsOfSelectedPoints) {
  // Two clumps: {0,1} highly similar with high utility, {2} slightly lower
  // utility but independent. With a strong pairwise term, greedy takes 0 then
  // prefers 2 over 1.
  std::vector<graph::NeighborList> lists(3);
  lists[0].edges = {{1, 1.0f}};
  Instance instance;
  instance.graph = graph::SimilarityGraph::from_lists(lists).symmetrized();
  instance.utilities = {1.0, 0.95, 0.6};
  const auto result = centralized_greedy(instance.graph, instance.utilities,
                                         ObjectiveParams{0.5, 0.5}, 2);
  EXPECT_EQ(result.selected, (std::vector<NodeId>{0, 2}));
}

TEST(CentralizedGreedy, SelectsEverythingWhenKIsN) {
  const Instance instance = random_instance(12, 3, 41);
  const auto result = centralized_greedy(instance.graph, instance.utilities,
                                         ObjectiveParams{0.9, 0.1}, 100);
  EXPECT_EQ(result.selected.size(), 12u);
  std::set<NodeId> unique(result.selected.begin(), result.selected.end());
  EXPECT_EQ(unique.size(), 12u);
}

TEST(CentralizedGreedy, ObjectiveSumMatchesEvaluation) {
  const Instance instance = random_instance(60, 5, 42);
  const auto ground_set = instance.ground_set();
  const ObjectiveParams params{0.9, 0.1};
  const auto result = centralized_greedy(instance.graph, instance.utilities, params, 20);
  PairwiseObjective objective(ground_set, params);
  EXPECT_NEAR(result.objective, objective.evaluate(result.selected), 1e-9);
}

/// The heap implementation (Alg. 2) must match the gain-recomputing reference
/// (Alg. 1) exactly — same subsets, same order.
class GreedyEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GreedyEquivalenceTest, HeapMatchesNaiveReference) {
  const Instance instance = random_instance(40, 4, GetParam());
  const auto ground_set = instance.ground_set();
  for (const double alpha : {0.9, 0.5, 0.1}) {
    const auto params = ObjectiveParams::from_alpha(alpha);
    const auto fast = centralized_greedy(instance.graph, instance.utilities, params, 15);
    const auto reference = naive_greedy(ground_set, params, 15);
    EXPECT_EQ(fast.selected, reference.selected) << "alpha=" << alpha;
    EXPECT_NEAR(fast.objective, reference.objective, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, GreedyEquivalenceTest,
                         ::testing::Values(51, 52, 53, 54, 55, 56));

/// Nemhauser et al.: greedy achieves at least (1 - 1/e) of the optimum for
/// monotone instances. Utilities are boosted so the objective is monotone.
class ApproximationTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ApproximationTest, GreedyWithinOneMinusOneOverEOfOptimum) {
  Instance instance = random_instance(14, 3, GetParam(), /*max_weight=*/0.5,
                                      /*max_utility=*/2.0);
  // Ensure monotonicity: lift utilities by the Appendix-A offset.
  const auto params = ObjectiveParams{0.7, 0.3};
  {
    const auto ground_set = instance.ground_set();
    const double delta = PairwiseObjective(ground_set, params).monotonicity_offset();
    for (double& u : instance.utilities) u += delta;
  }
  const auto ground_set = instance.ground_set();
  const std::size_t k = 5;
  const double optimum = brute_force_optimum(ground_set, params, k);
  const auto greedy = centralized_greedy(instance.graph, instance.utilities, params, k);
  EXPECT_GE(greedy.objective + 1e-9, (1.0 - 1.0 / std::exp(1.0)) * optimum);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, ApproximationTest,
                         ::testing::Values(61, 62, 63, 64, 65));

TEST(Subproblem, MaterializationKeepsOnlyIntraSubsetEdges) {
  // Path 0-1-2-3; members {0, 2, 3}: only edge 2-3 survives.
  std::vector<graph::NeighborList> lists(4);
  lists[0].edges = {{1, 0.5f}};
  lists[1].edges = {{2, 0.5f}};
  lists[2].edges = {{3, 0.5f}};
  Instance instance;
  instance.graph = graph::SimilarityGraph::from_lists(lists).symmetrized();
  instance.utilities = {1.0, 1.0, 1.0, 1.0};
  const auto ground_set = instance.ground_set();

  const auto sub = materialize_subproblem(ground_set, {3, 0, 2},
                                          ObjectiveParams{0.9, 0.1});
  EXPECT_EQ(sub.global_ids, (std::vector<NodeId>{0, 2, 3}));
  EXPECT_EQ(sub.edges.size(), 2u);  // 2->3 and 3->2 in local ids
  const auto neighbors_of_local_1 =
      std::make_pair(sub.offsets[1], sub.offsets[2]);  // local 1 = global 2
  EXPECT_EQ(neighbors_of_local_1.second - neighbors_of_local_1.first, 1);
  EXPECT_EQ(sub.edges[static_cast<std::size_t>(neighbors_of_local_1.first)].neighbor,
            2u);  // local id of global 3
}

TEST(Subproblem, ConditioningSubtractsSelectedNeighborEdges) {
  std::vector<graph::NeighborList> lists(3);
  lists[0].edges = {{1, 0.8f}};
  Instance instance;
  instance.graph = graph::SimilarityGraph::from_lists(lists).symmetrized();
  instance.utilities = {1.0, 1.0, 1.0};
  const auto ground_set = instance.ground_set();

  SelectionState state(3);
  state.select(1);
  const ObjectiveParams params{0.5, 0.5};
  const auto sub = materialize_subproblem(ground_set, {0, 2}, params, &state);
  // Global 0 has selected neighbor 1: priority = 1.0 - 1.0*0.8.
  EXPECT_NEAR(sub.priorities[0], 1.0 - 0.8, 1e-6);
  EXPECT_NEAR(sub.priorities[1], 1.0, 1e-12);
  EXPECT_TRUE(sub.edges.empty());
}

TEST(Subproblem, RejectsDuplicates) {
  const Instance instance = random_instance(5, 2, 71);
  const auto ground_set = instance.ground_set();
  EXPECT_THROW(
      materialize_subproblem(ground_set, {1, 1}, ObjectiveParams{0.9, 0.1}),
      std::invalid_argument);
}

TEST(Subproblem, GreedyOnFullSubproblemMatchesCentralized) {
  const Instance instance = random_instance(50, 5, 72);
  const auto ground_set = instance.ground_set();
  const ObjectiveParams params{0.9, 0.1};
  std::vector<NodeId> all(50);
  for (std::size_t i = 0; i < 50; ++i) all[i] = static_cast<NodeId>(i);
  const auto sub = materialize_subproblem(ground_set, all, params);
  const auto via_subproblem = greedy_on_subproblem(sub, 20, params);
  const auto direct = centralized_greedy(instance.graph, instance.utilities, params, 20);
  EXPECT_EQ(via_subproblem.selected, direct.selected);
  EXPECT_NEAR(via_subproblem.objective, direct.objective, 1e-9);
}

TEST(Subproblem, GreedyCapsAtSubproblemSize) {
  const Instance instance = random_instance(10, 2, 73);
  const auto ground_set = instance.ground_set();
  const ObjectiveParams params{0.9, 0.1};
  const auto sub = materialize_subproblem(ground_set, {1, 4, 7}, params);
  const auto result = greedy_on_subproblem(sub, 10, params);
  EXPECT_EQ(result.selected.size(), 3u);
}

/// The zero-copy/arena fast path (scatter-map membership, reused storage,
/// batched heap updates) must reproduce the seed implementation exactly:
/// identical subsets in identical order, identical objectives, identical
/// materialized CSR.
class ArenaEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ArenaEquivalenceTest, ArenaPathMatchesSeedReference) {
  Rng rng(GetParam());
  const Instance instance = random_instance(80, 5, GetParam());
  const auto ground_set = instance.ground_set();
  SubproblemArena arena;  // deliberately reused across every subcase below

  for (const double alpha : {0.9, 0.5, 0.1}) {
    const auto params = ObjectiveParams::from_alpha(alpha);
    for (std::size_t trial = 0; trial < 4; ++trial) {
      // Random member subset of random size (unsorted on purpose).
      std::vector<NodeId> members;
      for (NodeId v = 0; v < 80; ++v) {
        if (rng.bernoulli(0.4)) members.push_back(v);
      }
      rng.shuffle(std::span<NodeId>(members));
      if (members.empty()) members.push_back(static_cast<NodeId>(trial));
      const std::size_t k = 1 + rng.uniform_index(members.size());

      const auto seed_sub =
          reference::materialize_subproblem(ground_set, members, params);
      const Subproblem& arena_sub =
          materialize_subproblem(ground_set, members, params, nullptr, arena);
      EXPECT_EQ(arena_sub.global_ids, seed_sub.global_ids);
      EXPECT_EQ(arena_sub.priorities, seed_sub.priorities);
      EXPECT_EQ(arena_sub.offsets, seed_sub.offsets);
      ASSERT_EQ(arena_sub.edges.size(), seed_sub.edges.size());
      for (std::size_t e = 0; e < seed_sub.edges.size(); ++e) {
        EXPECT_EQ(arena_sub.edges[e].neighbor, seed_sub.edges[e].neighbor);
        EXPECT_EQ(arena_sub.edges[e].weight, seed_sub.edges[e].weight);
      }

      const auto seed_result =
          reference::greedy_on_subproblem(seed_sub, k, params);
      const auto arena_result = greedy_on_subproblem(arena_sub, k, params, arena);
      EXPECT_EQ(arena_result.selected, seed_result.selected);
      EXPECT_EQ(arena_result.objective, seed_result.objective);
    }
  }
}

TEST_P(ArenaEquivalenceTest, ArenaPathMatchesSeedReferenceWithConditioning) {
  const Instance instance = random_instance(60, 4, GetParam());
  const auto ground_set = instance.ground_set();
  const auto params = ObjectiveParams::from_alpha(0.5);

  SelectionState state(60);
  Rng rng(GetParam() ^ 0xC0DEULL);
  std::vector<NodeId> members;
  for (NodeId v = 0; v < 60; ++v) {
    if (rng.bernoulli(0.2)) {
      state.select(v);
    } else if (rng.bernoulli(0.5)) {
      members.push_back(v);
    }
  }
  if (members.empty()) GTEST_SKIP();

  SubproblemArena arena;
  const auto seed_sub =
      reference::materialize_subproblem(ground_set, members, params, &state);
  const Subproblem& arena_sub =
      materialize_subproblem(ground_set, members, params, &state, arena);
  EXPECT_EQ(arena_sub.global_ids, seed_sub.global_ids);
  EXPECT_EQ(arena_sub.priorities, seed_sub.priorities);

  const std::size_t k = (members.size() + 1) / 2;
  const auto seed_result = reference::greedy_on_subproblem(seed_sub, k, params);
  const auto arena_result = greedy_on_subproblem(arena_sub, k, params, arena);
  EXPECT_EQ(arena_result.selected, seed_result.selected);
  EXPECT_EQ(arena_result.objective, seed_result.objective);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, ArenaEquivalenceTest,
                         ::testing::Values(81, 82, 83, 84, 85, 86, 87, 88));

TEST(SubproblemArena, ByValueOverloadMatchesSeedReference) {
  const Instance instance = random_instance(40, 4, 91);
  const auto ground_set = instance.ground_set();
  const ObjectiveParams params{0.9, 0.1};
  const std::vector<NodeId> members{7, 3, 21, 14, 30, 2};
  const auto legacy = materialize_subproblem(ground_set, members, params);
  const auto seed = reference::materialize_subproblem(ground_set, members, params);
  EXPECT_EQ(legacy.global_ids, seed.global_ids);
  EXPECT_EQ(legacy.priorities, seed.priorities);
  EXPECT_EQ(legacy.offsets, seed.offsets);
}

TEST(SubproblemArena, RejectsDuplicates) {
  const Instance instance = random_instance(5, 2, 92);
  const auto ground_set = instance.ground_set();
  SubproblemArena arena;
  const std::vector<NodeId> members{1, 1};
  EXPECT_THROW(materialize_subproblem(ground_set, members,
                                      ObjectiveParams{0.9, 0.1}, nullptr, arena),
               std::invalid_argument);
}

TEST(SubproblemArena, BinarySearchFallbackBeyondDenseLimit) {
  // A view that reports a ground set too large for the dense scatter map but
  // only ever hands out small ids — forces the lower_bound fallback branch.
  class HugeView final : public graph::GroundSet {
   public:
    explicit HugeView(const graph::InMemoryGroundSet& inner) : inner_(inner) {}
    std::size_t num_points() const override {
      return SubproblemArena::kDenseMembershipLimit + 1;
    }
    double utility(NodeId v) const override { return inner_.utility(v); }
    void neighbors(NodeId v, std::vector<graph::Edge>& out) const override {
      inner_.neighbors(v, out);
    }

   private:
    const graph::InMemoryGroundSet& inner_;
  };

  const Instance instance = random_instance(50, 5, 93);
  const auto ground_set = instance.ground_set();
  const HugeView huge(ground_set);
  const ObjectiveParams params{0.9, 0.1};
  std::vector<NodeId> members;
  for (NodeId v = 0; v < 50; v += 2) members.push_back(v);

  SubproblemArena arena;
  const auto seed = reference::materialize_subproblem(ground_set, members, params);
  const Subproblem& fallback =
      materialize_subproblem(huge, members, params, nullptr, arena);
  EXPECT_EQ(fallback.global_ids, seed.global_ids);
  EXPECT_EQ(fallback.priorities, seed.priorities);
  EXPECT_EQ(fallback.offsets, seed.offsets);
  const auto seed_result = reference::greedy_on_subproblem(seed, 10, params);
  const auto fallback_result = greedy_on_subproblem(fallback, 10, params, arena);
  EXPECT_EQ(fallback_result.selected, seed_result.selected);
}

TEST(NaiveGreedy, EmptyBudget) {
  const Instance instance = random_instance(10, 2, 74);
  const auto ground_set = instance.ground_set();
  const auto result = naive_greedy(ground_set, ObjectiveParams{0.9, 0.1}, 0);
  EXPECT_TRUE(result.selected.empty());
  EXPECT_EQ(result.objective, 0.0);
}

}  // namespace
}  // namespace subsel::core
