#include "core/objective.h"

#include <gtest/gtest.h>

#include "../testing/test_instances.h"

namespace subsel::core {
namespace {

using testing::Instance;
using testing::random_instance;

Instance tiny_path_instance() {
  // Path 0 - 1 - 2 with weights 0.5 and 0.25; utilities 1, 2, 3.
  std::vector<graph::NeighborList> lists(3);
  lists[0].edges = {{1, 0.5f}};
  lists[1].edges = {{2, 0.25f}};
  Instance instance;
  instance.graph = graph::SimilarityGraph::from_lists(lists).symmetrized();
  instance.utilities = {1.0, 2.0, 3.0};
  return instance;
}

TEST(PairwiseObjective, EvaluatesHandComputedValues) {
  const Instance instance = tiny_path_instance();
  const auto ground_set = instance.ground_set();
  PairwiseObjective objective(ground_set, ObjectiveParams{0.9, 0.1});

  // Empty set.
  EXPECT_DOUBLE_EQ(objective.evaluate(std::vector<NodeId>{}), 0.0);
  // Singletons: unary only.
  EXPECT_DOUBLE_EQ(objective.evaluate(std::vector<NodeId>{0}), 0.9 * 1.0);
  // {0,1}: unary 0.9*3, pairwise 0.1*0.5 counted once.
  EXPECT_NEAR(objective.evaluate(std::vector<NodeId>{0, 1}), 0.9 * 3.0 - 0.1 * 0.5,
              1e-12);
  // Full set: both edges once.
  EXPECT_NEAR(objective.evaluate(std::vector<NodeId>{0, 1, 2}),
              0.9 * 6.0 - 0.1 * 0.75, 1e-12);
}

TEST(PairwiseObjective, BitmapAndIdListAgree) {
  const Instance instance = random_instance(40, 4, 11);
  const auto ground_set = instance.ground_set();
  PairwiseObjective objective(ground_set, ObjectiveParams::from_alpha(0.5));
  const std::vector<NodeId> subset{1, 5, 9, 20, 33};
  const auto bitmap = membership_bitmap(40, subset);
  EXPECT_DOUBLE_EQ(objective.evaluate(subset), objective.evaluate(bitmap));
}

TEST(PairwiseObjective, MarginalGainMatchesEvaluationDifference) {
  const Instance instance = random_instance(30, 5, 12);
  const auto ground_set = instance.ground_set();
  PairwiseObjective objective(ground_set, ObjectiveParams{0.9, 0.1});
  std::vector<NodeId> subset{2, 7, 15};
  auto bitmap = membership_bitmap(30, subset);
  for (NodeId v : {NodeId{0}, NodeId{10}, NodeId{29}}) {
    const double gain = objective.marginal_gain(bitmap, v);
    std::vector<NodeId> bigger = subset;
    bigger.push_back(v);
    EXPECT_NEAR(gain, objective.evaluate(bigger) - objective.evaluate(subset), 1e-9);
  }
}

/// Submodularity property test (Definition 3.1): for random B ⊆ A and e ∉ A,
/// the marginal gain w.r.t. A never exceeds the gain w.r.t. B.
class SubmodularityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SubmodularityTest, DiminishingReturnsHold) {
  Rng rng(GetParam());
  const Instance instance = random_instance(25, 4, GetParam());
  const auto ground_set = instance.ground_set();
  const double alpha = rng.uniform(0.1, 0.9);
  PairwiseObjective objective(ground_set, ObjectiveParams::from_alpha(alpha));

  for (int trial = 0; trial < 50; ++trial) {
    // Random A, random subset B of A, random e outside A.
    std::vector<std::uint8_t> a_bitmap(25, 0), b_bitmap(25, 0);
    for (std::size_t i = 0; i < 25; ++i) {
      if (rng.bernoulli(0.4)) {
        a_bitmap[i] = 1;
        if (rng.bernoulli(0.5)) b_bitmap[i] = 1;
      }
    }
    NodeId e = -1;
    for (std::size_t i = 0; i < 25; ++i) {
      if (a_bitmap[i] == 0) {
        e = static_cast<NodeId>(i);
        break;
      }
    }
    if (e < 0) continue;
    EXPECT_LE(objective.marginal_gain(a_bitmap, e),
              objective.marginal_gain(b_bitmap, e) + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, SubmodularityTest,
                         ::testing::Values(21, 22, 23, 24, 25));

TEST(PairwiseObjective, MonotoneAfterOffset) {
  // Make the pairwise terms dominate so the raw function is non-monotone,
  // then verify the Appendix-A offset fixes it.
  Instance instance = random_instance(20, 6, 31, /*max_weight=*/1.0,
                                      /*max_utility=*/0.05);
  const auto ground_set = instance.ground_set();
  const ObjectiveParams params{0.5, 0.5};
  PairwiseObjective objective(ground_set, params);
  const double delta = objective.monotonicity_offset();
  EXPECT_GT(delta, 0.0);

  // Shifted utilities: adding any element must now be non-detrimental.
  std::vector<double> shifted = instance.utilities;
  for (double& u : shifted) u += delta;
  graph::InMemoryGroundSet shifted_set(instance.graph, shifted);
  PairwiseObjective shifted_objective(shifted_set, params);
  Rng rng(32);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::uint8_t> bitmap(20, 0);
    for (auto& bit : bitmap) bit = rng.bernoulli(0.5) ? 1 : 0;
    NodeId e = static_cast<NodeId>(rng.uniform_index(20));
    if (bitmap[static_cast<std::size_t>(e)] != 0) continue;
    EXPECT_GE(shifted_objective.marginal_gain(bitmap, e), -1e-12);
  }
}

TEST(PairwiseObjective, OffsetIsTightOnStarGraph) {
  // Star: center 0 connected to 1..4 with weight 1; max incident weight = 4.
  std::vector<graph::NeighborList> lists(5);
  for (int leaf = 1; leaf <= 4; ++leaf) {
    lists[0].edges.push_back({leaf, 1.0f});
  }
  Instance instance;
  instance.graph = graph::SimilarityGraph::from_lists(lists).symmetrized();
  instance.utilities = {0.0, 0.0, 0.0, 0.0, 0.0};
  const auto ground_set = instance.ground_set();
  PairwiseObjective objective(ground_set, ObjectiveParams{0.5, 0.5});
  EXPECT_DOUBLE_EQ(objective.monotonicity_offset(), 4.0);
}

TEST(MembershipBitmap, RejectsDuplicatesAndOutOfRange) {
  EXPECT_THROW(membership_bitmap(5, std::vector<NodeId>{1, 1}),
               std::invalid_argument);
  EXPECT_THROW(membership_bitmap(5, std::vector<NodeId>{5}), std::out_of_range);
  EXPECT_THROW(membership_bitmap(5, std::vector<NodeId>{-1}), std::out_of_range);
}

TEST(ObjectiveParams, FromAlphaUsesComplementaryBeta) {
  const auto params = ObjectiveParams::from_alpha(0.9);
  EXPECT_DOUBLE_EQ(params.alpha, 0.9);
  EXPECT_DOUBLE_EQ(params.beta, 0.1);
  EXPECT_NEAR(params.pair_scale(), 1.0 / 9.0, 1e-12);
}

}  // namespace
}  // namespace subsel::core
