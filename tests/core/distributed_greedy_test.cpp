#include "core/distributed_greedy.h"

#include <gtest/gtest.h>

#include <set>

#include "../testing/test_instances.h"
#include "core/bounding.h"

namespace subsel::core {
namespace {

using testing::Instance;
using testing::random_instance;

DistributedGreedyConfig make_config(std::size_t machines, std::size_t rounds,
                                    bool adaptive, double alpha = 0.9,
                                    std::uint64_t seed = 23) {
  DistributedGreedyConfig config;
  config.objective = ObjectiveParams::from_alpha(alpha);
  config.num_machines = machines;
  config.num_rounds = rounds;
  config.adaptive_partitioning = adaptive;
  config.seed = seed;
  return config;
}

TEST(LinearDelta, SatisfiesBoundaryConstraint) {
  for (double gamma : {0.25, 0.5, 0.75, 1.0}) {
    const auto delta = linear_delta(gamma);
    // Last round must target exactly k (the Algorithm 6 constraint).
    EXPECT_EQ(delta(1000, 8, 8, 100), 100u);
    EXPECT_EQ(delta(1000, 1, 1, 5), 5u);
  }
}

TEST(LinearDelta, MonotonicallyDecreasesAcrossRounds) {
  const auto delta = linear_delta(0.75);
  std::size_t previous = 1000;
  for (std::size_t round = 1; round <= 8; ++round) {
    const std::size_t target = delta(1000, 8, round, 100);
    EXPECT_LE(target, previous);
    EXPECT_GE(target, 100u);
    previous = target;
  }
}

TEST(LinearDelta, GammaScalesIntermediateTargets) {
  const auto small = linear_delta(0.25);
  const auto large = linear_delta(1.0);
  EXPECT_LT(small(1000, 8, 1, 100), large(1000, 8, 1, 100));
}

TEST(LinearDelta, RejectsNonPositiveGamma) {
  EXPECT_THROW(linear_delta(0.0), std::invalid_argument);
  EXPECT_THROW(linear_delta(-1.0), std::invalid_argument);
}

TEST(DistributedGreedy, ReturnsExactlyKDistinctPoints) {
  const Instance instance = random_instance(200, 5, 201);
  const auto ground_set = instance.ground_set();
  for (std::size_t machines : {1u, 4u, 16u}) {
    for (std::size_t rounds : {1u, 4u}) {
      const auto result = distributed_greedy(ground_set, 20,
                                             make_config(machines, rounds, false));
      EXPECT_EQ(result.selected.size(), 20u);
      std::set<NodeId> unique(result.selected.begin(), result.selected.end());
      EXPECT_EQ(unique.size(), 20u);
      EXPECT_TRUE(std::is_sorted(result.selected.begin(), result.selected.end()));
    }
  }
}

TEST(DistributedGreedy, SingleMachineSingleRoundEqualsCentralized) {
  const Instance instance = random_instance(100, 5, 202);
  const auto ground_set = instance.ground_set();
  const auto params = ObjectiveParams::from_alpha(0.9);
  const auto distributed = distributed_greedy(ground_set, 15, make_config(1, 1, false));
  const auto centralized =
      centralized_greedy(instance.graph, instance.utilities, params, 15);
  std::vector<NodeId> sorted = centralized.selected;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(distributed.selected, sorted);
  EXPECT_NEAR(distributed.objective, centralized.objective, 1e-9);
}

TEST(DistributedGreedy, ObjectiveMatchesEvaluation) {
  const Instance instance = random_instance(150, 4, 203);
  const auto ground_set = instance.ground_set();
  const auto config = make_config(8, 3, true);
  const auto result = distributed_greedy(ground_set, 30, config);
  PairwiseObjective objective(ground_set, config.objective);
  EXPECT_NEAR(result.objective, objective.evaluate(result.selected), 1e-9);
}

TEST(DistributedGreedy, MoreRoundsDoNotHurtOnAverage) {
  // Figure 3's trend: averaged over seeds, 8 rounds beat 1 round for a small
  // subset with many partitions.
  const Instance instance = random_instance(600, 8, 204);
  const auto ground_set = instance.ground_set();
  double single = 0.0, multi = 0.0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    single += distributed_greedy(ground_set, 60,
                                 make_config(16, 1, false, 0.9, 300 + seed))
                  .objective;
    multi += distributed_greedy(ground_set, 60,
                                make_config(16, 8, false, 0.9, 300 + seed))
                 .objective;
  }
  EXPECT_GE(multi, single);
}

TEST(DistributedGreedy, AdaptivePartitioningUsesFewerPartitionsOverTime) {
  // k (20) fits within one partition cap (ceil(400/16) = 25), so Alg. 6's
  // m_round = ceil(n_round / cap) reaches exactly 1 in the final round.
  const Instance instance = random_instance(400, 5, 205);
  const auto ground_set = instance.ground_set();
  const auto result = distributed_greedy(ground_set, 20, make_config(16, 6, true));
  ASSERT_EQ(result.rounds.size(), 6u);
  EXPECT_GT(result.rounds.front().num_partitions, result.rounds.back().num_partitions);
  EXPECT_EQ(result.rounds.back().num_partitions, 1u);  // final rounds fit one machine
  for (std::size_t i = 1; i < result.rounds.size(); ++i) {
    EXPECT_LE(result.rounds[i].num_partitions, result.rounds[i - 1].num_partitions);
  }
}

TEST(DistributedGreedy, NonAdaptiveAlwaysUsesAllMachines) {
  const Instance instance = random_instance(400, 5, 206);
  const auto ground_set = instance.ground_set();
  const auto result = distributed_greedy(ground_set, 40, make_config(8, 4, false));
  for (const auto& round : result.rounds) {
    EXPECT_EQ(round.num_partitions, 8u);
  }
}

TEST(DistributedGreedy, AdaptiveBeatsNonAdaptiveOnAverage) {
  // Figure 4 vs Figure 3: adaptivity recovers neighborhood edges and should
  // not be worse when partitions are plentiful.
  const Instance instance = random_instance(600, 8, 207);
  const auto ground_set = instance.ground_set();
  double adaptive = 0.0, fixed = 0.0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    adaptive += distributed_greedy(ground_set, 60,
                                   make_config(16, 4, true, 0.9, 400 + seed))
                    .objective;
    fixed += distributed_greedy(ground_set, 60,
                                make_config(16, 4, false, 0.9, 400 + seed))
                 .objective;
  }
  EXPECT_GE(adaptive, fixed);
}

TEST(DistributedGreedy, RoundStatsAreConsistent) {
  const Instance instance = random_instance(300, 4, 208);
  const auto ground_set = instance.ground_set();
  const auto result = distributed_greedy(ground_set, 30, make_config(8, 4, false));
  ASSERT_EQ(result.rounds.size(), 4u);
  EXPECT_EQ(result.rounds[0].input_size, 300u);
  for (std::size_t i = 0; i < result.rounds.size(); ++i) {
    const auto& round = result.rounds[i];
    EXPECT_EQ(round.round, i + 1);
    EXPECT_LE(round.output_size, round.input_size);
    EXPECT_GE(round.output_size, 30u);
    EXPECT_GT(round.peak_partition_bytes, 0u);
    if (i > 0) {
      EXPECT_EQ(round.input_size, result.rounds[i - 1].output_size);
    }
  }
}

TEST(DistributedGreedy, HonorsBoundingState) {
  const Instance instance = random_instance(120, 4, 209);
  const auto ground_set = instance.ground_set();
  BoundingConfig bounding_config;
  bounding_config.objective = ObjectiveParams::from_alpha(0.9);
  bounding_config.sampling = BoundingSampling::kUniform;
  bounding_config.sample_fraction = 0.3;
  const auto bounding = bound(ground_set, 40, bounding_config);

  const auto result =
      distributed_greedy(ground_set, 40, make_config(4, 2, true), &bounding.state);
  EXPECT_EQ(result.selected.size(), 40u);
  // Every bounding-selected point must be in the answer; discarded must not.
  for (NodeId v : bounding.state.selected_ids()) {
    EXPECT_TRUE(std::binary_search(result.selected.begin(), result.selected.end(), v));
  }
  for (NodeId v = 0; v < 120; ++v) {
    if (bounding.state.is_discarded(v)) {
      EXPECT_FALSE(
          std::binary_search(result.selected.begin(), result.selected.end(), v));
    }
  }
}

TEST(DistributedGreedy, WorstCasePartitioningStillReturnsValidSubset) {
  const Instance instance = random_instance(200, 5, 210);
  const auto ground_set = instance.ground_set();
  const auto params = ObjectiveParams::from_alpha(0.9);
  auto centralized = centralized_greedy(instance.graph, instance.utilities, params, 20);
  std::sort(centralized.selected.begin(), centralized.selected.end());

  auto config = make_config(10, 4, false);
  config.forced_first_partition = centralized.selected;
  const auto result = distributed_greedy(ground_set, 20, config);
  EXPECT_EQ(result.selected.size(), 20u);
  std::set<NodeId> unique(result.selected.begin(), result.selected.end());
  EXPECT_EQ(unique.size(), 20u);
}

TEST(DistributedGreedy, KLargerThanGroundSetSelectsEverything) {
  const Instance instance = random_instance(25, 3, 211);
  const auto ground_set = instance.ground_set();
  const auto result = distributed_greedy(ground_set, 100, make_config(4, 2, true));
  EXPECT_EQ(result.selected.size(), 25u);
}

TEST(DistributedGreedy, RejectsZeroMachinesOrRounds) {
  const Instance instance = random_instance(10, 2, 212);
  const auto ground_set = instance.ground_set();
  EXPECT_THROW(distributed_greedy(ground_set, 5, make_config(0, 1, false)),
               std::invalid_argument);
  EXPECT_THROW(distributed_greedy(ground_set, 5, make_config(1, 0, false)),
               std::invalid_argument);
}

TEST(DistributedGreedy, DeterministicForFixedSeed) {
  const Instance instance = random_instance(150, 4, 213);
  const auto ground_set = instance.ground_set();
  const auto a = distributed_greedy(ground_set, 15, make_config(8, 3, true, 0.9, 99));
  const auto b = distributed_greedy(ground_set, 15, make_config(8, 3, true, 0.9, 99));
  EXPECT_EQ(a.selected, b.selected);
  EXPECT_EQ(a.objective, b.objective);
}

TEST(DistributedGreedy, ProgressReportsEveryRound) {
  const Instance instance = random_instance(200, 4, 214);
  const auto ground_set = instance.ground_set();
  auto config = make_config(4, 3, false);
  std::vector<std::size_t> steps;
  config.progress = [&steps](const ProgressEvent& event) {
    EXPECT_EQ(event.stage, "round");
    EXPECT_EQ(event.total_steps, 3u);
    steps.push_back(event.step);
  };
  const auto result = distributed_greedy(ground_set, 20, config);
  EXPECT_EQ(steps, (std::vector<std::size_t>{1, 2, 3}));
  EXPECT_FALSE(result.preempted);
  EXPECT_EQ(result.selected.size(), 20u);
}

TEST(DistributedGreedy, CancellationMidRunYieldsCleanPreemption) {
  const Instance instance = random_instance(300, 4, 215);
  const auto ground_set = instance.ground_set();
  auto config = make_config(4, 5, false);
  // Cancel from the progress callback after the first round completes — the
  // round loop must stop at the next round boundary with a preempted result,
  // not a full run and not a partial subset.
  config.progress = [&config](const ProgressEvent& event) {
    if (event.step >= 1) config.cancel.request_stop();
  };
  const auto cancelled = distributed_greedy(ground_set, 30, config);
  EXPECT_TRUE(cancelled.preempted);
  EXPECT_TRUE(cancelled.selected.empty());
  EXPECT_EQ(cancelled.objective, 0.0);
  EXPECT_EQ(cancelled.rounds.size(), 1u);

  // Re-arming the token lets the identical config run to completion and
  // match an undisturbed run exactly.
  config.cancel.reset();
  config.progress = nullptr;
  const auto full = distributed_greedy(ground_set, 30, config);
  const auto undisturbed =
      distributed_greedy(ground_set, 30, make_config(4, 5, false));
  EXPECT_FALSE(full.preempted);
  EXPECT_EQ(full.selected, undisturbed.selected);
}

TEST(DistributedGreedy, CancelledCheckpointedRunResumes) {
  const Instance instance = random_instance(250, 4, 216);
  const auto ground_set = instance.ground_set();
  const std::string checkpoint =
      ::testing::TempDir() + "/distgreedy_cancel.ckpt";

  auto config = make_config(4, 4, false);
  config.checkpoint_file = checkpoint;
  config.progress = [&config](const ProgressEvent& event) {
    if (event.step >= 2) config.cancel.request_stop();
  };
  const auto cancelled = distributed_greedy(ground_set, 25, config);
  EXPECT_TRUE(cancelled.preempted);
  EXPECT_EQ(cancelled.rounds.size(), 2u);

  config.cancel.reset();
  config.progress = nullptr;
  const auto resumed = distributed_greedy(ground_set, 25, config);
  EXPECT_EQ(resumed.resumed_rounds, 2u);

  config.checkpoint_file.clear();
  const auto uninterrupted = distributed_greedy(ground_set, 25, config);
  EXPECT_EQ(resumed.selected, uninterrupted.selected);
}

}  // namespace
}  // namespace subsel::core
