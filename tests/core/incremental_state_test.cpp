// Parity suite for the incremental kernel state and the batched solve loop:
// the flat arena-backed state (make_incremental_state) must reproduce the
// virtual SubproblemScorer — the equivalence oracle — selection-for-selection
// and gain-for-gain, and stay within tolerance of the kernel's brute-force
// exact oracle, across randomized instances, adversarial ties, duplicate
// weights, conditioning on pre-selected state, and empty partitions.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <span>
#include <vector>

#include "../testing/test_instances.h"
#include "baselines/baselines.h"
#include "baselines/gain_engine.h"
#include "core/coverage_kernel.h"
#include "core/facility_location_kernel.h"
#include "core/greedy.h"
#include "core/objective_kernel.h"

namespace subsel::core {
namespace {

using subsel::testing::Instance;
using subsel::testing::random_instance;

/// All three built-in kernels over one ground set.
struct KernelSet {
  PairwiseKernel pairwise;
  FacilityLocationKernel facility_location;
  SaturatedCoverageKernel coverage;

  explicit KernelSet(const graph::GroundSet& ground_set)
      : pairwise(ground_set, ObjectiveParams::from_alpha(0.8)),
        facility_location(ground_set, {}),
        coverage(ground_set, [] {
          SaturatedCoverageParams params;
          params.saturation = 0.8;
          return params;
        }()) {}

  std::vector<const ObjectiveKernel*> all() const {
    return {&pairwise, &facility_location, &coverage};
  }
};

std::vector<NodeId> every_third(std::size_t n) {
  std::vector<NodeId> members;
  for (std::size_t i = 0; i < n; i += 3) members.push_back(static_cast<NodeId>(i));
  return members;
}

/// Gains from the state (single and batched) must equal the scorer's exactly
/// after every selection of a shared random play-out.
void expect_state_mirrors_scorer(const ObjectiveKernel& kernel,
                                 std::span<const NodeId> members,
                                 const SelectionState* conditioning,
                                 std::uint64_t seed) {
  SubproblemArena scorer_arena;
  Subproblem& scorer_sub = materialize_subproblem_topology(
      kernel.ground_set(), members, scorer_arena);
  const std::unique_ptr<SubproblemScorer> scorer = kernel.make_scorer();
  scorer->reset(scorer_sub, conditioning);
  const std::vector<double> scorer_priorities = scorer_sub.priorities;

  SubproblemArena state_arena;
  Subproblem& state_sub = materialize_subproblem_topology(
      kernel.ground_set(), members, state_arena);
  const std::unique_ptr<KernelIncrementalState> state =
      kernel.make_incremental_state(state_arena);
  ASSERT_NE(state, nullptr) << kernel.name();
  state->reset(state_sub, conditioning);

  const std::size_t n = state_sub.size();
  ASSERT_EQ(state_sub.priorities.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(state_sub.priorities[i], scorer_priorities[i])
        << kernel.name() << " initial gain of local " << i;
  }
  EXPECT_GT(state->state_bytes(), 0u);

  Rng rng(seed);
  std::vector<std::uint32_t> all(n);
  for (std::uint32_t i = 0; i < n; ++i) all[i] = i;
  std::vector<std::uint32_t> picks(all);
  rng.shuffle(std::span<std::uint32_t>(picks));
  picks.resize(std::min<std::size_t>(n, 12));

  std::vector<double> batched(n);
  for (const std::uint32_t pick : picks) {
    state->gains_batch(all, batched);
    for (std::uint32_t v = 0; v < n; ++v) {
      const double expected = scorer->gain(v);
      EXPECT_EQ(state->gain(v), expected)
          << kernel.name() << " gain of local " << v;
      EXPECT_EQ(batched[v], expected)
          << kernel.name() << " batched gain of local " << v;
    }
    scorer->select(pick);
    state->select(pick);
  }
}

TEST(IncrementalStateParity, MirrorsScorerOnRandomSubproblems) {
  for (std::uint64_t seed : {41001ULL, 41002ULL, 41003ULL}) {
    const Instance instance = random_instance(90, 5, seed);
    const auto ground_set = instance.ground_set();
    const KernelSet kernels(ground_set);
    const std::vector<NodeId> members = every_third(90);
    for (const ObjectiveKernel* kernel : kernels.all()) {
      expect_state_mirrors_scorer(*kernel, members, nullptr, seed ^ 0xfeed);
    }
  }
}

TEST(IncrementalStateParity, MirrorsScorerConditionedOnSelectionState) {
  const Instance instance = random_instance(80, 6, 41010);
  const auto ground_set = instance.ground_set();
  const KernelSet kernels(ground_set);

  SelectionState conditioning(80);
  conditioning.select(2);
  conditioning.select(35);
  conditioning.select(71);
  conditioning.discard(7);
  const std::vector<NodeId> members = conditioning.unassigned_ids();
  for (const ObjectiveKernel* kernel : kernels.all()) {
    expect_state_mirrors_scorer(*kernel, members, &conditioning, 99);
  }
}

TEST(IncrementalStateParity, GainsTrackBruteForceOracle) {
  // Over the full ground set (no dropped edges) the subproblem-scoped state
  // must agree with the kernel's exact marginal-gain oracle.
  const Instance instance = random_instance(60, 5, 41020);
  const auto ground_set = instance.ground_set();
  const KernelSet kernels(ground_set);
  const std::size_t n = 60;
  std::vector<NodeId> members(n);
  for (std::size_t i = 0; i < n; ++i) members[i] = static_cast<NodeId>(i);

  for (const ObjectiveKernel* kernel : kernels.all()) {
    SubproblemArena arena;
    Subproblem& sub =
        materialize_subproblem_topology(ground_set, members, arena);
    const std::unique_ptr<KernelIncrementalState> state =
        kernel->make_incremental_state(arena);
    state->reset(sub, nullptr);

    std::vector<std::uint8_t> membership(n, 0);
    const std::vector<std::uint32_t> picks = {3, 17, 42, 8, 55};
    for (const std::uint32_t pick : picks) {
      for (std::uint32_t v = 0; v < n; ++v) {
        if (membership[v] != 0) continue;
        const double oracle = kernel->marginal_gain(membership, static_cast<NodeId>(v));
        EXPECT_NEAR(state->gain(v), oracle, 1e-9 * (1.0 + std::abs(oracle)))
            << kernel->name() << " vs oracle at local " << v;
      }
      membership[pick] = 1;
      state->select(pick);
    }
  }
}

void expect_drivers_agree(const ObjectiveKernel& kernel,
                          std::span<const NodeId> members, std::size_t k) {
  SubproblemArena scorer_arena;
  Subproblem& scorer_sub = materialize_subproblem_topology(
      kernel.ground_set(), members, scorer_arena);
  const std::unique_ptr<SubproblemScorer> scorer = kernel.make_scorer();
  scorer->reset(scorer_sub, nullptr);
  const GreedyResult lazy =
      lazy_greedy_on_subproblem(scorer_sub, k, *scorer, scorer_arena);

  SubproblemArena state_arena;
  Subproblem& state_sub = materialize_subproblem_topology(
      kernel.ground_set(), members, state_arena);
  const std::unique_ptr<KernelIncrementalState> state =
      kernel.make_incremental_state(state_arena);
  state->reset(state_sub, nullptr);
  const GreedyResult batched =
      incremental_greedy_on_subproblem(state_sub, k, *state, state_arena);

  EXPECT_EQ(batched.selected, lazy.selected) << kernel.name();
  EXPECT_EQ(batched.objective, lazy.objective) << kernel.name();
}

TEST(BatchedLazyDriver, MatchesScorerDriverOnRandomInstances) {
  for (std::uint64_t seed : {41101ULL, 41102ULL}) {
    const Instance instance = random_instance(150, 6, seed);
    const auto ground_set = instance.ground_set();
    const KernelSet kernels(ground_set);
    const std::vector<NodeId> members = every_third(150);
    for (const ObjectiveKernel* kernel : kernels.all()) {
      // k spanning less than, around, and beyond one refresh batch.
      for (const std::size_t k : {std::size_t{5}, kGainRefreshBatch + 3,
                                  members.size()}) {
        expect_drivers_agree(*kernel, members, k);
      }
    }
  }
}

TEST(BatchedLazyDriver, MatchesScorerDriverUnderAdversarialTies) {
  // Every weight and utility identical: every candidate ties with every
  // other, so any divergence in tie-breaking (or any last-ulp gain drift)
  // would reorder selections.
  const std::size_t n = 120;
  Instance instance = random_instance(n, 5, 41200, /*max_weight=*/1.0,
                                      /*max_utility=*/2.0);
  std::vector<graph::NeighborList> lists(n);
  {
    std::vector<graph::Edge> scratch;
    for (std::size_t v = 0; v < n; ++v) {
      for (const graph::Edge& e : instance.graph.neighbors(static_cast<NodeId>(v))) {
        lists[v].edges.push_back(graph::Edge{e.neighbor, 0.5f});
      }
    }
  }
  instance.graph = graph::SimilarityGraph::from_lists(lists).symmetrized();
  std::fill(instance.utilities.begin(), instance.utilities.end(), 1.0);
  const auto ground_set = instance.ground_set();
  const KernelSet kernels(ground_set);

  std::vector<NodeId> members(n);
  for (std::size_t i = 0; i < n; ++i) members[i] = static_cast<NodeId>(i);
  for (const ObjectiveKernel* kernel : kernels.all()) {
    expect_drivers_agree(*kernel, members, n / 3);
  }
}

TEST(BatchedLazyDriver, MatchesScorerDriverWithDuplicateWeights) {
  // Two distinct weight values only: heavy duplication without full
  // degeneracy.
  const std::size_t n = 100;
  Instance instance = random_instance(n, 6, 41210);
  std::vector<graph::NeighborList> lists(n);
  Rng rng(7);
  for (std::size_t v = 0; v < n; ++v) {
    for (const graph::Edge& e : instance.graph.neighbors(static_cast<NodeId>(v))) {
      lists[v].edges.push_back(
          graph::Edge{e.neighbor, rng.uniform() < 0.5 ? 0.25f : 0.75f});
    }
  }
  instance.graph = graph::SimilarityGraph::from_lists(lists).symmetrized();
  for (double& u : instance.utilities) u = rng.uniform() < 0.5 ? 1.0 : 1.5;
  const auto ground_set = instance.ground_set();
  const KernelSet kernels(ground_set);

  std::vector<NodeId> members(n);
  for (std::size_t i = 0; i < n; ++i) members[i] = static_cast<NodeId>(i);
  for (const ObjectiveKernel* kernel : kernels.all()) {
    expect_drivers_agree(*kernel, members, n / 2);
  }
}

TEST(BatchedLazyDriver, HandlesEmptyAndDegeneratePartitions) {
  const Instance instance = random_instance(40, 4, 41220);
  const auto ground_set = instance.ground_set();
  const KernelSet kernels(ground_set);
  for (const ObjectiveKernel* kernel : kernels.all()) {
    SubproblemArena arena;
    // Empty member list.
    const GreedyResult empty = solve_partition(
        ground_set, std::span<const NodeId>{}, 5, *kernel, nullptr, arena,
        PartitionSolver::kPriorityQueue, 0.1, 1);
    EXPECT_TRUE(empty.selected.empty()) << kernel->name();
    EXPECT_EQ(empty.objective, 0.0) << kernel->name();

    // k = 0 on a non-empty partition.
    std::vector<NodeId> members = {1, 5, 9};
    const GreedyResult zero = solve_partition(
        ground_set, members, 0, *kernel, nullptr, arena,
        PartitionSolver::kPriorityQueue, 0.1, 1);
    EXPECT_TRUE(zero.selected.empty()) << kernel->name();

    // k beyond the partition size selects everything.
    const GreedyResult all = solve_partition(
        ground_set, members, 64, *kernel, nullptr, arena,
        PartitionSolver::kPriorityQueue, 0.1, 1);
    EXPECT_EQ(all.selected.size(), members.size()) << kernel->name();

    // Duplicate members are rejected on both gain paths.
    std::vector<NodeId> duplicates = {1, 5, 5};
    EXPECT_THROW(solve_partition(ground_set, duplicates, 2, *kernel, nullptr,
                                 arena, PartitionSolver::kPriorityQueue, 0.1, 1),
                 std::invalid_argument)
        << kernel->name();
  }
}

TEST(SolvePartitionGainEngine, AutoMatchesScorerReference) {
  const Instance instance = random_instance(200, 6, 41300);
  const auto ground_set = instance.ground_set();
  const KernelSet kernels(ground_set);
  const std::vector<NodeId> members = every_third(200);
  const std::size_t k = members.size() / 2;

  for (const ObjectiveKernel* kernel : kernels.all()) {
    SubproblemArena auto_arena;
    std::size_t auto_state_bytes = 0;
    const GreedyResult with_state = solve_partition(
        ground_set, members, k, *kernel, nullptr, auto_arena,
        PartitionSolver::kPriorityQueue, 0.1, 3, nullptr, &auto_state_bytes,
        GainEngine::kAuto);

    SubproblemArena scorer_arena;
    std::size_t scorer_state_bytes = 0;
    const GreedyResult with_scorer = solve_partition(
        ground_set, members, k, *kernel, nullptr, scorer_arena,
        PartitionSolver::kPriorityQueue, 0.1, 3, nullptr, &scorer_state_bytes,
        GainEngine::kScorerReference);

    EXPECT_EQ(with_state.selected, with_scorer.selected) << kernel->name();
    EXPECT_EQ(with_state.objective, with_scorer.objective) << kernel->name();
    EXPECT_EQ(scorer_state_bytes, 0u) << kernel->name();
    if (kernel->pairwise_params() == nullptr) {
      // The coverage-family kernels actually allocated flat state.
      EXPECT_GT(auto_state_bytes, 0u) << kernel->name();
      EXPECT_EQ(with_state.kernel_state_bytes, auto_state_bytes);
      EXPECT_GT(with_state.materialized_bytes, 0u);
    }
  }
}

TEST(SolvePartitionGainEngine, StochasticAutoMatchesScorerReference) {
  const Instance instance = random_instance(180, 5, 41310);
  const auto ground_set = instance.ground_set();
  const KernelSet kernels(ground_set);
  std::vector<NodeId> members(180);
  for (std::size_t i = 0; i < members.size(); ++i) {
    members[i] = static_cast<NodeId>(i);
  }

  for (const ObjectiveKernel* kernel : kernels.all()) {
    SubproblemArena auto_arena;
    const GreedyResult with_state = solve_partition(
        ground_set, members, 30, *kernel, nullptr, auto_arena,
        PartitionSolver::kStochastic, 0.2, 777, nullptr, nullptr,
        GainEngine::kAuto);
    SubproblemArena scorer_arena;
    const GreedyResult with_scorer = solve_partition(
        ground_set, members, 30, *kernel, nullptr, scorer_arena,
        PartitionSolver::kStochastic, 0.2, 777, nullptr, nullptr,
        GainEngine::kScorerReference);
    EXPECT_EQ(with_state.selected, with_scorer.selected) << kernel->name();
    EXPECT_EQ(with_state.objective, with_scorer.objective) << kernel->name();
  }
}

TEST(MarginalGainEngine, IncrementalBaselinesMatchOracleReference) {
  // The full-ground-set engine behind the centralized baselines: lazy greedy
  // through it must select exactly what the pre-engine oracle implementation
  // selects, for every kernel.
  const Instance instance = random_instance(140, 6, 41400);
  const auto ground_set = instance.ground_set();
  const KernelSet kernels(ground_set);
  for (const ObjectiveKernel* kernel : kernels.all()) {
    const GreedyResult oracle = baselines::reference::lazy_greedy(*kernel, 25);
    const GreedyResult engine = baselines::lazy_greedy(*kernel, 25);
    EXPECT_EQ(engine.selected, oracle.selected) << kernel->name();
    EXPECT_NEAR(engine.objective, oracle.objective,
                1e-9 * (1.0 + std::abs(oracle.objective)))
        << kernel->name();
    if (kernel->pairwise_params() == nullptr) {
      EXPECT_GT(engine.kernel_state_bytes, 0u) << kernel->name();
      EXPECT_GT(engine.materialized_bytes, 0u) << kernel->name();
    } else {
      // Pairwise keeps the exact oracle: no engine state, bit-identical sums.
      EXPECT_EQ(engine.kernel_state_bytes, 0u);
      EXPECT_EQ(engine.objective, oracle.objective);
    }
  }
}

TEST(MarginalGainEngine, GainAndBatchMatchOraclePerStep) {
  const Instance instance = random_instance(70, 5, 41410);
  const auto ground_set = instance.ground_set();
  const KernelSet kernels(ground_set);
  const std::size_t n = 70;
  for (const ObjectiveKernel* kernel : kernels.all()) {
    baselines::MarginalGainEngine engine(*kernel);
    EXPECT_EQ(engine.incremental(), kernel->pairwise_params() == nullptr)
        << kernel->name();
    std::vector<std::uint8_t> membership(n, 0);
    std::vector<NodeId> candidates;
    std::vector<double> gains;
    for (const NodeId pick : {NodeId{4}, NodeId{31}, NodeId{66}}) {
      candidates.clear();
      for (std::size_t v = 0; v < n; ++v) {
        if (membership[v] == 0) candidates.push_back(static_cast<NodeId>(v));
      }
      gains.resize(candidates.size());
      engine.gains_batch(candidates, gains);
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        const double oracle = kernel->marginal_gain(membership, candidates[i]);
        EXPECT_NEAR(engine.gain(candidates[i]), oracle,
                    1e-9 * (1.0 + std::abs(oracle)))
            << kernel->name();
        EXPECT_EQ(gains[i], engine.gain(candidates[i])) << kernel->name();
      }
      membership[static_cast<std::size_t>(pick)] = 1;
      engine.select(pick);
      EXPECT_TRUE(engine.is_selected(pick));
    }
  }
}

}  // namespace
}  // namespace subsel::core
