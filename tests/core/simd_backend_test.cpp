// SIMD backend parity suite: the vectorized kernel backends (AVX2/NEON,
// whatever the host supports) must produce BIT-IDENTICAL gains, selections,
// and objectives to the portable scalar backend — the whole design contract
// of core/kernel_simd.h (lane-split accumulation, premultiplied/residual
// state spaces shared by every backend). Covers the forcing seams
// (ScopedBackendOverride, GainEngine::kIncrementalScalar), the raw kernel
// primitives across awkward lengths, and the adversarial shapes the ISSUE
// calls out: degrees below the vector width, empty subproblems, and
// duplicate/tied gains.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "../testing/constraint_oracle.h"
#include "../testing/property.h"
#include "../testing/test_instances.h"
#include "common/rng.h"
#include "common/simd.h"
#include "core/coverage_kernel.h"
#include "core/facility_location_kernel.h"
#include "core/greedy.h"
#include "core/kernel_simd.h"
#include "core/objective_kernel.h"

namespace subsel::core {
namespace {

using subsel::testing::Instance;
using subsel::testing::random_instance;

TEST(SimdBackend, NamesAndOverrideRoundTrip) {
  const simd::Backend detected = simd::detected_backend();
  EXPECT_STREQ(simd::backend_name(simd::Backend::kScalar), "scalar");
  EXPECT_STREQ(simd::backend_name(simd::Backend::kAvx2), "avx2");
  EXPECT_STREQ(simd::backend_name(simd::Backend::kNeon), "neon");

  {
    simd::ScopedBackendOverride force_scalar(simd::Backend::kScalar);
    EXPECT_EQ(simd::active_backend(), simd::Backend::kScalar);
    {
      // Nested override back to the widest available backend.
      simd::ScopedBackendOverride force_native(detected);
      EXPECT_EQ(simd::active_backend(), detected);
    }
    EXPECT_EQ(simd::active_backend(), simd::Backend::kScalar);
  }
  // A non-scalar request never selects an unsupported backend.
  {
    simd::ScopedBackendOverride force_wide(simd::Backend::kAvx2);
    EXPECT_EQ(simd::active_backend(), detected);
  }
}

TEST(SimdBackend, EnvFlagParsing) {
  ::setenv("SUBSEL_SIMD_TEST_FLAG", "yes", 1);
  EXPECT_TRUE(simd::env_flag_enabled("SUBSEL_SIMD_TEST_FLAG"));
  ::setenv("SUBSEL_SIMD_TEST_FLAG", "TRUE", 1);
  EXPECT_TRUE(simd::env_flag_enabled("SUBSEL_SIMD_TEST_FLAG"));
  ::setenv("SUBSEL_SIMD_TEST_FLAG", "0", 1);
  EXPECT_FALSE(simd::env_flag_enabled("SUBSEL_SIMD_TEST_FLAG"));
  ::setenv("SUBSEL_SIMD_TEST_FLAG", "off", 1);
  EXPECT_FALSE(simd::env_flag_enabled("SUBSEL_SIMD_TEST_FLAG"));
  ::unsetenv("SUBSEL_SIMD_TEST_FLAG");
  EXPECT_FALSE(simd::env_flag_enabled("SUBSEL_SIMD_TEST_FLAG"));
}

// ---------------------------------------------------------------------------
// Raw primitive parity: the active backend's cover/resid/gather kernels must
// reproduce the scalar backend bit-for-bit on every length around the vector
// width, including 0 and non-multiples.
// ---------------------------------------------------------------------------

TEST(SimdKernelPrimitives, ActiveBackendMatchesScalarBitForBit) {
  const ksimd::KernelSimdOps& scalar = ksimd::ops_for(simd::Backend::kScalar);
  const ksimd::KernelSimdOps& active = ksimd::ops_for(simd::detected_backend());

  Rng rng(90001);
  const std::size_t state_size = 64;
  std::vector<double> state(state_size);
  for (double& v : state) v = rng.uniform() * 2.0 - 0.5;  // some negatives

  for (const std::size_t count :
       {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{3},
        std::size_t{4}, std::size_t{5}, std::size_t{7}, std::size_t{8},
        std::size_t{9}, std::size_t{15}, std::size_t{16}, std::size_t{17},
        std::size_t{31}, std::size_t{33}}) {
    std::vector<std::uint32_t> nbr(count);
    std::vector<double> pw(count);
    for (std::size_t e = 0; e < count; ++e) {
      nbr[e] = static_cast<std::uint32_t>(rng() % state_size);
      pw[e] = rng.uniform();  // premultiplied weights are always >= 0
    }
    const double self_term = rng.uniform();

    EXPECT_EQ(active.cover_gain(nbr.data(), pw.data(), count, state.data(),
                                self_term),
              scalar.cover_gain(nbr.data(), pw.data(), count, state.data(),
                                self_term))
        << "cover_gain count=" << count;
    EXPECT_EQ(active.resid_gain(nbr.data(), pw.data(), count, state.data(),
                                self_term),
              scalar.resid_gain(nbr.data(), pw.data(), count, state.data(),
                                self_term))
        << "resid_gain count=" << count;

    std::vector<double> out_scalar(count, -1.0), out_active(count, -2.0);
    scalar.gather(state.data(), nbr.data(), count, out_scalar.data());
    active.gather(state.data(), nbr.data(), count, out_active.data());
    EXPECT_EQ(out_active, out_scalar) << "gather count=" << count;
  }
}

// ---------------------------------------------------------------------------
// Whole-solve parity: native backend vs forced-scalar, across kernels.
// ---------------------------------------------------------------------------

/// All three built-in kernels over one ground set.
struct KernelSet {
  PairwiseKernel pairwise;
  FacilityLocationKernel facility_location;
  SaturatedCoverageKernel coverage;

  explicit KernelSet(const graph::GroundSet& ground_set)
      : pairwise(ground_set, ObjectiveParams::from_alpha(0.8)),
        facility_location(ground_set, {}),
        coverage(ground_set, [] {
          SaturatedCoverageParams params;
          params.saturation = 0.8;
          return params;
        }()) {}

  std::vector<const ObjectiveKernel*> all() const {
    return {&pairwise, &facility_location, &coverage};
  }
};

void expect_backends_agree(const graph::GroundSet& ground_set,
                           std::span<const NodeId> members, std::size_t k,
                           std::uint64_t seed) {
  const KernelSet kernels(ground_set);
  for (const ObjectiveKernel* kernel : kernels.all()) {
    SubproblemArena native_arena;
    const GreedyResult native = solve_partition(
        ground_set, members, k, *kernel, nullptr, native_arena,
        PartitionSolver::kPriorityQueue, 0.1, seed, nullptr, nullptr,
        GainEngine::kAuto);
    SubproblemArena scalar_arena;
    const GreedyResult scalar = solve_partition(
        ground_set, members, k, *kernel, nullptr, scalar_arena,
        PartitionSolver::kPriorityQueue, 0.1, seed, nullptr, nullptr,
        GainEngine::kIncrementalScalar);
    EXPECT_EQ(native.selected, scalar.selected) << kernel->name();
    EXPECT_EQ(native.objective, scalar.objective) << kernel->name();

    // Stochastic path too (shared Rng stream, so same candidate samples).
    SubproblemArena native_stoch;
    const GreedyResult native_s = solve_partition(
        ground_set, members, k, *kernel, nullptr, native_stoch,
        PartitionSolver::kStochastic, 0.2, seed, nullptr, nullptr,
        GainEngine::kAuto);
    SubproblemArena scalar_stoch;
    const GreedyResult scalar_s = solve_partition(
        ground_set, members, k, *kernel, nullptr, scalar_stoch,
        PartitionSolver::kStochastic, 0.2, seed, nullptr, nullptr,
        GainEngine::kIncrementalScalar);
    EXPECT_EQ(native_s.selected, scalar_s.selected) << kernel->name();
    EXPECT_EQ(native_s.objective, scalar_s.objective) << kernel->name();
  }
}

TEST(SimdSolveParity, RandomInstances) {
  for (std::uint64_t seed : {91001ULL, 91002ULL, 91003ULL}) {
    const Instance instance = random_instance(160, 6, seed);
    const auto ground_set = instance.ground_set();
    std::vector<NodeId> members;
    for (std::size_t i = 0; i < 160; i += 2) {
      members.push_back(static_cast<NodeId>(i));
    }
    expect_backends_agree(ground_set, members, members.size() / 3, seed);
  }
}

TEST(SimdSolveParity, DegreesBelowVectorWidth) {
  // Max degree 1-3: every neighborhood slice is shorter than the 4-wide
  // kernel loop, so only the tail path runs.
  for (const std::size_t degree : {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
    const Instance instance = random_instance(90, degree, 91100 + degree);
    const auto ground_set = instance.ground_set();
    std::vector<NodeId> members(90);
    for (std::size_t i = 0; i < 90; ++i) members[i] = static_cast<NodeId>(i);
    expect_backends_agree(ground_set, members, 20, 91100 + degree);
  }
}

TEST(SimdSolveParity, EmptyAndDegenerateSubproblems) {
  const Instance instance = random_instance(40, 4, 91200);
  const auto ground_set = instance.ground_set();
  const KernelSet kernels(ground_set);
  for (const ObjectiveKernel* kernel : kernels.all()) {
    SubproblemArena arena;
    const GreedyResult empty = solve_partition(
        ground_set, std::span<const NodeId>{}, 5, *kernel, nullptr, arena,
        PartitionSolver::kPriorityQueue, 0.1, 1, nullptr, nullptr,
        GainEngine::kIncrementalScalar);
    EXPECT_TRUE(empty.selected.empty()) << kernel->name();

    const std::vector<NodeId> one = {7};
    const GreedyResult single = solve_partition(
        ground_set, one, 3, *kernel, nullptr, arena,
        PartitionSolver::kPriorityQueue, 0.1, 1, nullptr, nullptr,
        GainEngine::kIncrementalScalar);
    EXPECT_EQ(single.selected, one) << kernel->name();
  }
}

TEST(SimdSolveParity, DuplicateAndTiedGains) {
  // Constant weights and utilities: every candidate ties with every other,
  // so one flipped ulp anywhere in a vectorized sum would reorder picks.
  const std::size_t n = 120;
  Instance instance = random_instance(n, 5, 91300);
  std::vector<graph::NeighborList> lists(n);
  for (std::size_t v = 0; v < n; ++v) {
    for (const graph::Edge& e : instance.graph.neighbors(static_cast<NodeId>(v))) {
      lists[v].edges.push_back(graph::Edge{e.neighbor, 0.5f});
    }
  }
  instance.graph = graph::SimilarityGraph::from_lists(lists).symmetrized();
  std::fill(instance.utilities.begin(), instance.utilities.end(), 1.0);
  const auto ground_set = instance.ground_set();
  std::vector<NodeId> members(n);
  for (std::size_t i = 0; i < n; ++i) members[i] = static_cast<NodeId>(i);
  expect_backends_agree(ground_set, members, n / 3, 91300);
}

// ---------------------------------------------------------------------------
// State-level parity + backend reporting.
// ---------------------------------------------------------------------------

TEST(SimdStateParity, GainsIdenticalUnderForcedScalarState) {
  const Instance instance = random_instance(100, 6, 91400);
  const auto ground_set = instance.ground_set();
  const KernelSet kernels(ground_set);
  std::vector<NodeId> members;
  for (std::size_t i = 0; i < 100; i += 2) {
    members.push_back(static_cast<NodeId>(i));
  }

  for (const ObjectiveKernel* kernel : kernels.all()) {
    SubproblemArena native_arena;
    Subproblem& native_sub = materialize_subproblem_topology(
        ground_set, members, native_arena);
    const std::unique_ptr<KernelIncrementalState> native =
        kernel->make_incremental_state(native_arena);
    native->reset(native_sub, nullptr);

    SubproblemArena scalar_arena;
    Subproblem& scalar_sub = materialize_subproblem_topology(
        ground_set, members, scalar_arena);
    std::unique_ptr<KernelIncrementalState> scalar;
    {
      // The state binds its backend at construction, so the override only
      // needs to span make_incremental_state.
      simd::ScopedBackendOverride force(simd::Backend::kScalar);
      scalar = kernel->make_incremental_state(scalar_arena);
    }
    scalar->reset(scalar_sub, nullptr);

    EXPECT_STREQ(scalar->backend(), "scalar") << kernel->name();
    EXPECT_STREQ(native->backend(), simd::active_backend_name())
        << kernel->name();

    const std::size_t n = native_sub.size();
    std::vector<std::uint32_t> all(n);
    for (std::uint32_t i = 0; i < n; ++i) all[i] = i;
    std::vector<double> native_gains(n), scalar_gains(n);
    for (const std::uint32_t pick : {0u, 5u, 17u, 31u}) {
      native->gains_batch(all, native_gains);
      scalar->gains_batch(all, scalar_gains);
      for (std::uint32_t v = 0; v < n; ++v) {
        EXPECT_EQ(native_gains[v], scalar_gains[v])
            << kernel->name() << " local " << v;
        EXPECT_EQ(native->gain(v), scalar->gain(v))
            << kernel->name() << " local " << v;
      }
      native->select(pick);
      scalar->select(pick);
    }
  }
}

// ---------------------------------------------------------------------------
// Randomized parity: the PR-9 suite above pins adversarial shapes by hand;
// this one drives the pairwise kernel through the property harness so every
// run sweeps fresh graphs, member subsets, and budgets — with seeds printed
// and auto-shrunk on failure. Gains, picks, and objectives must match the
// forced-scalar engine bit-for-bit, constrained or not.
// ---------------------------------------------------------------------------

TEST(SimdSolveParity, RandomizedPairwiseScalarVsNativeBitIdentity) {
  subsel::testing::check_property(
      "pairwise scalar-vs-native bit identity", 120,
      [](std::uint64_t seed, double scale) -> std::optional<std::string> {
        const std::size_t n = subsel::testing::scaled(140, scale, 12);
        Rng rng(seed ^ 0x51fd);
        const std::size_t degree = 1 + rng.uniform_index(7);
        const Instance instance = random_instance(n, degree, seed);
        const auto ground_set = instance.ground_set();
        const PairwiseKernel kernel(
            ground_set, ObjectiveParams::from_alpha(0.5 + 0.4 * rng.uniform()));

        // Random member subset (never empty) and budget.
        std::vector<NodeId> members;
        for (std::size_t i = 0; i < n; ++i) {
          if (rng.uniform() < 0.7) members.push_back(static_cast<NodeId>(i));
        }
        if (members.empty()) members.push_back(0);
        const std::size_t k = 1 + rng.uniform_index(members.size());

        for (const auto solver :
             {PartitionSolver::kPriorityQueue, PartitionSolver::kStochastic}) {
          SubproblemArena native_arena;
          const GreedyResult native = solve_partition(
              ground_set, members, k, kernel, nullptr, native_arena, solver,
              0.2, seed, nullptr, nullptr, GainEngine::kAuto);
          SubproblemArena scalar_arena;
          const GreedyResult scalar = solve_partition(
              ground_set, members, k, kernel, nullptr, scalar_arena, solver,
              0.2, seed, nullptr, nullptr, GainEngine::kIncrementalScalar);
          if (native.selected != scalar.selected) {
            return "selections diverged (solver "
                   + std::to_string(static_cast<int>(solver)) + ")";
          }
          if (native.objective != scalar.objective) {
            return "objectives diverged by " +
                   std::to_string(native.objective - scalar.objective);
          }
        }
        return std::nullopt;
      });
}

TEST(SimdSolveParity, RandomizedConstrainedSolvesStayBitIdentical) {
  // The constraint seam must not disturb backend parity: the tracker only
  // filters acceptances, so native and forced-scalar runs still walk the
  // same gain sequence and must pick the same feasible elements.
  subsel::testing::check_property(
      "constrained scalar-vs-native bit identity", 100,
      [](std::uint64_t seed, double scale) -> std::optional<std::string> {
        const std::size_t n = subsel::testing::scaled(60, scale, 10);
        const Instance instance = random_instance(n, 4, seed);
        const auto ground_set = instance.ground_set();
        const PairwiseKernel kernel(ground_set,
                                    ObjectiveParams::from_alpha(0.9));
        Rng rng(seed ^ 0x51dc);
        const ConstraintSet constraints =
            subsel::testing::random_constraints(n, rng);
        std::vector<NodeId> members(n);
        for (std::size_t i = 0; i < n; ++i) members[i] = static_cast<NodeId>(i);
        const std::size_t k = 2 + rng.uniform_index(n / 2);

        SubproblemArena native_arena;
        const GreedyResult native = solve_partition(
            ground_set, members, k, kernel, nullptr, native_arena,
            PartitionSolver::kPriorityQueue, 0.1, seed, nullptr, nullptr,
            GainEngine::kAuto, &constraints);
        SubproblemArena scalar_arena;
        const GreedyResult scalar = solve_partition(
            ground_set, members, k, kernel, nullptr, scalar_arena,
            PartitionSolver::kPriorityQueue, 0.1, seed, nullptr, nullptr,
            GainEngine::kIncrementalScalar, &constraints);
        if (native.selected != scalar.selected) return "selections diverged";
        if (native.objective != scalar.objective) return "objectives diverged";
        return std::nullopt;
      });
}

TEST(SimdKernelPrimitives, RandomizedLengthsMatchScalarBitForBit) {
  const ksimd::KernelSimdOps& scalar = ksimd::ops_for(simd::Backend::kScalar);
  const ksimd::KernelSimdOps& active = ksimd::ops_for(simd::detected_backend());
  subsel::testing::check_property(
      "kernel primitive bit identity at random lengths", 150,
      [&](std::uint64_t seed, double scale) -> std::optional<std::string> {
        Rng rng(seed);
        const std::size_t state_size =
            subsel::testing::scaled(96, scale, 8);
        std::vector<double> state(state_size);
        for (double& v : state) v = rng.uniform() * 2.0 - 0.5;
        const std::size_t count = rng.uniform_index(2 * state_size);
        std::vector<std::uint32_t> nbr(count);
        std::vector<double> pw(count);
        for (std::size_t e = 0; e < count; ++e) {
          nbr[e] = static_cast<std::uint32_t>(rng.uniform_index(state_size));
          pw[e] = rng.uniform();
        }
        const double self_term = rng.uniform();

        const double cover_native =
            active.cover_gain(nbr.data(), pw.data(), count, state.data(),
                              self_term);
        const double cover_scalar =
            scalar.cover_gain(nbr.data(), pw.data(), count, state.data(),
                              self_term);
        if (cover_native != cover_scalar) {
          return "cover_gain diverged at count " + std::to_string(count);
        }
        const double resid_native =
            active.resid_gain(nbr.data(), pw.data(), count, state.data(),
                              self_term);
        const double resid_scalar =
            scalar.resid_gain(nbr.data(), pw.data(), count, state.data(),
                              self_term);
        if (resid_native != resid_scalar) {
          return "resid_gain diverged at count " + std::to_string(count);
        }
        std::vector<double> out_scalar(count), out_active(count);
        scalar.gather(state.data(), nbr.data(), count, out_scalar.data());
        active.gather(state.data(), nbr.data(), count, out_active.data());
        if (out_active != out_scalar) {
          return "gather diverged at count " + std::to_string(count);
        }
        return std::nullopt;
      });
}

TEST(SimdBackendReporting, CapsEchoTheActiveBackend) {
  const Instance instance = random_instance(30, 4, 91500);
  const auto ground_set = instance.ground_set();
  const KernelSet kernels(ground_set);
  for (const ObjectiveKernel* kernel : kernels.all()) {
    EXPECT_STREQ(kernel->caps().simd_backend, simd::active_backend_name())
        << kernel->name();
  }
  simd::ScopedBackendOverride force(simd::Backend::kScalar);
  for (const ObjectiveKernel* kernel : kernels.all()) {
    EXPECT_STREQ(kernel->caps().simd_backend, "scalar") << kernel->name();
  }
}

}  // namespace
}  // namespace subsel::core
