// The ObjectiveKernel seam: pairwise-kernel bit-equivalence against the
// pre-kernel path (core::reference:: and the ObjectiveParams round loops),
// the lazy scorer driver against closed-form Algorithm 2, and the new
// kernels (facility location, saturated coverage) against brute-force
// marginal-gain greedy.
#include "core/objective_kernel.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "../testing/test_instances.h"
#include "core/coverage_kernel.h"
#include "core/distributed_greedy.h"
#include "core/facility_location_kernel.h"
#include "core/greedy.h"

namespace subsel::core {
namespace {

using subsel::testing::Instance;
using subsel::testing::random_instance;

TEST(ObjectiveParamsValidation, RejectsMalformedAlphaBeta) {
  EXPECT_THROW((ObjectiveParams{0.0, 1.0}.validate()), std::invalid_argument);
  EXPECT_THROW((ObjectiveParams{-0.5, 1.0}.validate()), std::invalid_argument);
  EXPECT_THROW((ObjectiveParams{0.9, -0.1}.validate()), std::invalid_argument);
  EXPECT_THROW(
      (ObjectiveParams{std::numeric_limits<double>::quiet_NaN(), 0.1}.validate()),
      std::invalid_argument);
  EXPECT_THROW(
      (ObjectiveParams{0.9, std::numeric_limits<double>::infinity()}.validate()),
      std::invalid_argument);
  EXPECT_NO_THROW((ObjectiveParams{0.9, 0.0}.validate()));
  EXPECT_NO_THROW(ObjectiveParams::from_alpha(0.1).validate());
}

TEST(ObjectiveParamsValidation, PairwiseObjectiveFailsFastOnAlphaZero) {
  const Instance instance = random_instance(30, 4, 9001);
  const auto ground_set = instance.ground_set();
  EXPECT_THROW((PairwiseObjective(ground_set, ObjectiveParams{0.0, 1.0})),
               std::invalid_argument);
  EXPECT_THROW((PairwiseKernel(ground_set, ObjectiveParams{0.0, 1.0})),
               std::invalid_argument);
  DistributedGreedyConfig config;
  config.objective = {0.0, 1.0};
  config.num_machines = 2;
  config.num_rounds = 1;
  EXPECT_THROW(distributed_greedy(ground_set, 5, config), std::invalid_argument);
}

TEST(PairwiseKernelEquivalence, SolvePartitionMatchesReferenceBitForBit) {
  const auto params = ObjectiveParams::from_alpha(0.9);
  for (std::uint64_t seed : {9101ULL, 9102ULL, 9103ULL}) {
    const Instance instance = random_instance(220, 6, seed);
    const auto ground_set = instance.ground_set();
    const PairwiseKernel kernel(ground_set, params);

    // Arbitrary member subset (every third point).
    std::vector<NodeId> members;
    for (std::size_t i = 0; i < 220; i += 3) {
      members.push_back(static_cast<NodeId>(i));
    }
    const std::size_t k = members.size() / 2;

    const Subproblem reference_sub =
        reference::materialize_subproblem(ground_set, members, params);
    const GreedyResult expected =
        reference::greedy_on_subproblem(reference_sub, k, params);

    SubproblemArena arena;
    std::size_t bytes = 0;
    const GreedyResult actual = solve_partition(
        ground_set, members, k, kernel, nullptr, arena,
        PartitionSolver::kPriorityQueue, 0.1, seed, &bytes);

    EXPECT_EQ(actual.selected, expected.selected);
    EXPECT_EQ(actual.objective, expected.objective);  // bit-identical
    EXPECT_EQ(bytes, reference_sub.byte_size());
  }
}

TEST(PairwiseKernelEquivalence, DistributedGreedyWithKernelIsBitIdentical) {
  const Instance instance = random_instance(400, 5, 9200);
  const auto ground_set = instance.ground_set();
  const auto params = ObjectiveParams::from_alpha(0.8);
  const PairwiseKernel kernel(ground_set, params);

  DistributedGreedyConfig legacy;
  legacy.objective = params;
  legacy.num_machines = 4;
  legacy.num_rounds = 3;
  legacy.seed = 77;
  const DistributedGreedyResult expected = distributed_greedy(ground_set, 40, legacy);

  DistributedGreedyConfig with_kernel = legacy;
  with_kernel.kernel = &kernel;
  const DistributedGreedyResult actual =
      distributed_greedy(ground_set, 40, with_kernel);

  EXPECT_EQ(actual.selected, expected.selected);
  EXPECT_EQ(actual.objective, expected.objective);  // bit-identical
  ASSERT_EQ(actual.rounds.size(), expected.rounds.size());
  for (std::size_t r = 0; r < actual.rounds.size(); ++r) {
    EXPECT_EQ(actual.rounds[r].output_size, expected.rounds[r].output_size);
    EXPECT_EQ(actual.rounds[r].peak_partition_bytes,
              expected.rounds[r].peak_partition_bytes);
  }
}

TEST(PairwiseKernelEquivalence, StochasticPartitionSolverIsBitIdentical) {
  const Instance instance = random_instance(300, 5, 9210);
  const auto ground_set = instance.ground_set();
  const auto params = ObjectiveParams::from_alpha(0.9);
  const PairwiseKernel kernel(ground_set, params);

  DistributedGreedyConfig legacy;
  legacy.objective = params;
  legacy.num_machines = 3;
  legacy.num_rounds = 2;
  legacy.partition_solver = PartitionSolver::kStochastic;
  legacy.stochastic_epsilon = 0.2;
  legacy.seed = 11;
  const DistributedGreedyResult expected = distributed_greedy(ground_set, 30, legacy);

  DistributedGreedyConfig with_kernel = legacy;
  with_kernel.kernel = &kernel;
  const DistributedGreedyResult actual =
      distributed_greedy(ground_set, 30, with_kernel);
  EXPECT_EQ(actual.selected, expected.selected);
  EXPECT_EQ(actual.objective, expected.objective);
}

TEST(LazyScorerDriver, MatchesClosedFormAlgorithmTwoOnPairwise) {
  // The generic lazy driver fed by the pairwise scorer must select exactly
  // what the closed-form decrease-key path selects (gains differ only by the
  // α·(u − (β/α)Σ) vs α·u − β·Σ association, which cannot reorder them on
  // these random instances).
  const auto params = ObjectiveParams::from_alpha(0.7);
  for (std::uint64_t seed : {9301ULL, 9302ULL}) {
    const Instance instance = random_instance(150, 6, seed);
    const auto ground_set = instance.ground_set();
    const PairwiseKernel kernel(ground_set, params);

    std::vector<NodeId> members(150);
    for (std::size_t i = 0; i < members.size(); ++i) {
      members[i] = static_cast<NodeId>(i);
    }
    const std::size_t k = 30;

    SubproblemArena closed_arena;
    const Subproblem& closed_sub = materialize_subproblem(
        ground_set, members, params, nullptr, closed_arena);
    const GreedyResult closed =
        greedy_on_subproblem(closed_sub, k, params, closed_arena);

    SubproblemArena lazy_arena;
    Subproblem& lazy_sub =
        materialize_subproblem_topology(ground_set, members, lazy_arena);
    const std::unique_ptr<SubproblemScorer> scorer = kernel.make_scorer();
    scorer->reset(lazy_sub, nullptr);
    const GreedyResult lazy =
        lazy_greedy_on_subproblem(lazy_sub, k, *scorer, lazy_arena);

    EXPECT_EQ(lazy.selected, closed.selected);
    EXPECT_NEAR(lazy.objective, closed.objective, 1e-9);
  }
}

TEST(LazyScorerDriver, ConditionsOnPreselectedState) {
  const Instance instance = random_instance(80, 6, 9400);
  const auto ground_set = instance.ground_set();
  const auto params = ObjectiveParams::from_alpha(0.6);
  const PairwiseKernel kernel(ground_set, params);

  SelectionState state(80);
  state.select(3);
  state.select(17);
  state.discard(5);

  std::vector<NodeId> members = state.unassigned_ids();
  const std::size_t k = 10;

  SubproblemArena closed_arena;
  const Subproblem& closed_sub = materialize_subproblem(
      ground_set, members, params, &state, closed_arena);
  const GreedyResult closed =
      greedy_on_subproblem(closed_sub, k, params, closed_arena);

  SubproblemArena lazy_arena;
  Subproblem& lazy_sub =
      materialize_subproblem_topology(ground_set, members, lazy_arena);
  const std::unique_ptr<SubproblemScorer> scorer = kernel.make_scorer();
  scorer->reset(lazy_sub, &state);
  const GreedyResult lazy = lazy_greedy_on_subproblem(lazy_sub, k, *scorer,
                                                      lazy_arena);
  EXPECT_EQ(lazy.selected, closed.selected);
}

template <typename Kernel>
void expect_matches_naive(const Kernel& kernel, std::size_t k) {
  const GreedyResult expected = naive_greedy(kernel, k);

  const std::size_t n = kernel.ground_set().num_points();
  std::vector<NodeId> members(n);
  for (std::size_t i = 0; i < n; ++i) members[i] = static_cast<NodeId>(i);
  SubproblemArena arena;
  GreedyResult actual =
      solve_partition(kernel.ground_set(), members, k, kernel, nullptr, arena,
                      PartitionSolver::kPriorityQueue, 0.1, 0, nullptr);
  // solve_partition reports pick order; naive too. Same order expected.
  EXPECT_EQ(actual.selected, expected.selected);
  EXPECT_NEAR(actual.objective, expected.objective, 1e-9);
}

TEST(FacilityLocationKernel, LazyDriverMatchesNaiveKernelGreedy) {
  for (std::uint64_t seed : {9501ULL, 9502ULL}) {
    const Instance instance = random_instance(70, 5, seed);
    const auto ground_set = instance.ground_set();
    const FacilityLocationKernel kernel(ground_set, {});
    expect_matches_naive(kernel, 12);
  }
}

TEST(SaturatedCoverageKernel, LazyDriverMatchesNaiveKernelGreedy) {
  for (std::uint64_t seed : {9511ULL, 9512ULL}) {
    const Instance instance = random_instance(70, 5, seed);
    const auto ground_set = instance.ground_set();
    SaturatedCoverageParams params;
    params.saturation = 0.8;
    const SaturatedCoverageKernel kernel(ground_set, params);
    expect_matches_naive(kernel, 12);
  }
}

TEST(FacilityLocationKernel, RejectsInvalidParams) {
  const Instance instance = random_instance(20, 3, 9520);
  const auto ground_set = instance.ground_set();
  FacilityLocationParams params;
  params.self_similarity = -1.0;
  EXPECT_THROW(FacilityLocationKernel(ground_set, params), std::invalid_argument);
}

TEST(SaturatedCoverageKernel, RejectsInvalidParams) {
  const Instance instance = random_instance(20, 3, 9521);
  const auto ground_set = instance.ground_set();
  SaturatedCoverageParams params;
  params.saturation = 0.0;
  EXPECT_THROW(SaturatedCoverageKernel(ground_set, params), std::invalid_argument);
}

TEST(StochasticScorerDriver, MatchesPairwiseStochasticSelections) {
  // The scorer-based stochastic driver draws the exact same Rng stream as
  // the pairwise-priorities overload, so with a pairwise scorer (whose gains
  // are a positive rescaling of the maintained priorities) the selected
  // sequences must coincide.
  const Instance instance = random_instance(160, 6, 9700);
  const auto ground_set = instance.ground_set();
  const auto params = ObjectiveParams::from_alpha(0.85);
  const PairwiseKernel kernel(ground_set, params);

  std::vector<NodeId> members(160);
  for (std::size_t i = 0; i < members.size(); ++i) {
    members[i] = static_cast<NodeId>(i);
  }
  SubproblemArena arena;
  const Subproblem& sub =
      materialize_subproblem(ground_set, members, params, nullptr, arena);
  const GreedyResult expected =
      stochastic_greedy_on_subproblem(sub, 25, params, 0.2, 555);

  SubproblemArena scorer_arena;
  Subproblem& scorer_sub =
      materialize_subproblem_topology(ground_set, members, scorer_arena);
  const std::unique_ptr<SubproblemScorer> scorer = kernel.make_scorer();
  scorer->reset(scorer_sub, nullptr);
  const GreedyResult actual =
      stochastic_greedy_on_subproblem(scorer_sub, 25, *scorer, 0.2, 555);

  EXPECT_EQ(actual.selected, expected.selected);
  EXPECT_NEAR(actual.objective, expected.objective, 1e-9);
}

TEST(StochasticScorerDriver, NewKernelsRunThroughStochasticPartitions) {
  const Instance instance = random_instance(250, 5, 9710);
  const auto ground_set = instance.ground_set();
  const FacilityLocationKernel fl(ground_set, {});
  const SaturatedCoverageKernel cov(ground_set, {});
  for (const ObjectiveKernel* kernel :
       std::vector<const ObjectiveKernel*>{&fl, &cov}) {
    DistributedGreedyConfig config;
    config.kernel = kernel;
    config.num_machines = 3;
    config.num_rounds = 2;
    config.partition_solver = PartitionSolver::kStochastic;
    config.stochastic_epsilon = 0.2;
    config.seed = 13;
    const DistributedGreedyResult result = distributed_greedy(ground_set, 25, config);
    ASSERT_EQ(result.selected.size(), 25u) << kernel->name();
    EXPECT_TRUE(std::is_sorted(result.selected.begin(), result.selected.end()));
    EXPECT_EQ(std::adjacent_find(result.selected.begin(), result.selected.end()),
              result.selected.end());
    EXPECT_NEAR(result.objective,
                kernel->evaluate(std::span<const NodeId>(result.selected)), 1e-9)
        << kernel->name();
  }
}

TEST(KernelCheckpoints, DifferentObjectiveConfigsDoNotResumeEachOther) {
  // A checkpoint written under one objective configuration must be ignored
  // (clean restart) by a run under another — same kernel name, different
  // parameters included.
  const Instance instance = random_instance(200, 5, 9800);
  const auto ground_set = instance.ground_set();
  const std::string checkpoint =
      ::testing::TempDir() + "/kernel_checkpoint_test.bin";
  std::remove(checkpoint.c_str());

  SaturatedCoverageParams tau_five;
  tau_five.saturation = 5.0;
  const SaturatedCoverageKernel kernel_five(ground_set, tau_five);
  DistributedGreedyConfig config;
  config.kernel = &kernel_five;
  config.num_machines = 2;
  config.num_rounds = 3;
  config.checkpoint_file = checkpoint;
  config.stop_after_round = 1;  // leave a checkpoint behind
  const DistributedGreedyResult partial = distributed_greedy(ground_set, 20, config);
  ASSERT_TRUE(partial.preempted);

  // Same kernel class, different saturation: must NOT resume (fingerprint
  // mismatch -> restart from round 1, so all 3 rounds execute).
  SaturatedCoverageParams tau_one;
  tau_one.saturation = 1.0;
  const SaturatedCoverageKernel kernel_one(ground_set, tau_one);
  DistributedGreedyConfig other = config;
  other.kernel = &kernel_one;
  other.stop_after_round = 0;
  const DistributedGreedyResult restarted = distributed_greedy(ground_set, 20, other);
  EXPECT_EQ(restarted.resumed_rounds, 0u);
  EXPECT_EQ(restarted.rounds.size(), 3u);

  // And an identical configuration MUST resume.
  std::remove(checkpoint.c_str());
  const DistributedGreedyResult partial_again =
      distributed_greedy(ground_set, 20, config);
  ASSERT_TRUE(partial_again.preempted);
  DistributedGreedyConfig same = config;
  same.stop_after_round = 0;
  const DistributedGreedyResult resumed = distributed_greedy(ground_set, 20, same);
  EXPECT_EQ(resumed.resumed_rounds, 1u);
  EXPECT_EQ(resumed.rounds.size(), 2u);
  std::remove(checkpoint.c_str());
}

TEST(KernelDistributedGreedy, NewKernelsRunEndToEndWithRoundsAndState) {
  // Full multi-round distributed greedy under each new kernel: valid subset,
  // objective equals a fresh kernel evaluation of the returned ids.
  const Instance instance = random_instance(300, 5, 9600);
  const auto ground_set = instance.ground_set();

  const FacilityLocationKernel fl(ground_set, {});
  SaturatedCoverageParams cov_params;
  const SaturatedCoverageKernel cov(ground_set, cov_params);
  const std::vector<const ObjectiveKernel*> kernels = {&fl, &cov};

  for (const ObjectiveKernel* kernel : kernels) {
    DistributedGreedyConfig config;
    config.kernel = kernel;
    config.num_machines = 4;
    config.num_rounds = 3;
    config.seed = 5;
    const DistributedGreedyResult result = distributed_greedy(ground_set, 30, config);
    ASSERT_EQ(result.selected.size(), 30u) << kernel->name();
    EXPECT_TRUE(std::is_sorted(result.selected.begin(), result.selected.end()));
    const double fresh =
        kernel->evaluate(std::span<const NodeId>(result.selected));
    EXPECT_NEAR(result.objective, fresh, 1e-9) << kernel->name();
    EXPECT_GT(result.objective, 0.0) << kernel->name();
  }
}

}  // namespace
}  // namespace subsel::core
