#include "core/bounding.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "../testing/test_instances.h"
#include "core/greedy.h"

namespace subsel::core {
namespace {

using testing::Instance;
using testing::brute_force_optimum;
using testing::random_instance;

BoundingConfig exact_config(double alpha) {
  BoundingConfig config;
  config.objective = ObjectiveParams::from_alpha(alpha);
  config.sampling = BoundingSampling::kNone;
  return config;
}

TEST(UtilityBounds, MatchDefinitionsOnHandInstance) {
  // Path 0 - 1 - 2 (weights 0.5, 0.25), utilities 1, 2, 3; alpha=beta=0.5
  // so pair_scale = 1.
  std::vector<graph::NeighborList> lists(3);
  lists[0].edges = {{1, 0.5f}};
  lists[1].edges = {{2, 0.25f}};
  Instance instance;
  instance.graph = graph::SimilarityGraph::from_lists(lists).symmetrized();
  instance.utilities = {1.0, 2.0, 3.0};
  const auto ground_set = instance.ground_set();

  BoundingConfig config = exact_config(0.5);
  SelectionState state(3);
  std::vector<double> u_min, u_max;
  detail::compute_utility_bounds(ground_set, state, config, 1, u_min, u_max);
  // No partial solution: Umax = u; Umin subtracts all neighbors.
  EXPECT_NEAR(u_min[0], 1.0 - 0.5, 1e-6);
  EXPECT_NEAR(u_min[1], 2.0 - 0.75, 1e-6);
  EXPECT_NEAR(u_min[2], 3.0 - 0.25, 1e-6);
  EXPECT_DOUBLE_EQ(u_max[0], 1.0);
  EXPECT_DOUBLE_EQ(u_max[1], 2.0);
  EXPECT_DOUBLE_EQ(u_max[2], 3.0);

  // Select 2, discard 0: point 1's Umin no longer counts 0's edge but still
  // counts 2's (selected neighbors always count); Umax now counts 2's edge.
  state.select(2);
  state.discard(0);
  detail::compute_utility_bounds(ground_set, state, config, 2, u_min, u_max);
  EXPECT_TRUE(std::isnan(u_min[0]));
  EXPECT_TRUE(std::isnan(u_max[2]));
  EXPECT_NEAR(u_min[1], 2.0 - 0.25, 1e-6);
  EXPECT_NEAR(u_max[1], 2.0 - 0.25, 1e-6);
}

TEST(UtilityBounds, UminNeverExceedsUmax) {
  const Instance instance = random_instance(60, 5, 81);
  const auto ground_set = instance.ground_set();
  const BoundingConfig config = exact_config(0.5);
  SelectionState state(60);
  state.select(3);
  state.select(17);
  state.discard(40);
  std::vector<double> u_min, u_max;
  detail::compute_utility_bounds(ground_set, state, config, 1, u_min, u_max);
  for (std::size_t i = 0; i < 60; ++i) {
    if (!state.is_unassigned(static_cast<NodeId>(i))) continue;
    EXPECT_LE(u_min[i], u_max[i] + 1e-12);
  }
}

TEST(ExactBounding, NeverMakesWrongDecisionsVsBruteForce) {
  // Lemmas 4.3/4.4: exact bounding only selects points of the optimal set and
  // only discards points outside it (when the optimum is unique).
  for (std::uint64_t seed : {101, 102, 103, 104, 105, 106}) {
    const Instance instance = random_instance(12, 3, seed);
    const auto ground_set = instance.ground_set();
    const std::size_t k = 4;
    BoundingConfig config = exact_config(0.9);
    const auto result = bound(ground_set, k, config);

    std::vector<NodeId> optimal;
    brute_force_optimum(ground_set, config.objective, k, &optimal);
    for (NodeId v = 0; v < 12; ++v) {
      const bool in_optimal = std::binary_search(optimal.begin(), optimal.end(), v);
      if (result.state.is_selected(v)) {
        EXPECT_TRUE(in_optimal) << "seed " << seed << " selected non-optimal " << v;
      }
      if (result.state.is_discarded(v)) {
        EXPECT_FALSE(in_optimal) << "seed " << seed << " discarded optimal " << v;
      }
    }
  }
}

TEST(ExactBounding, CompletesOnIsolatedPoints) {
  // Without edges Umin == Umax == u, so bounding solves the problem outright:
  // top-k by utility selected, rest discarded.
  Instance instance;
  instance.graph =
      graph::SimilarityGraph::from_lists(std::vector<graph::NeighborList>(6));
  instance.utilities = {0.1, 0.6, 0.3, 0.9, 0.2, 0.5};
  const auto ground_set = instance.ground_set();
  const auto result = bound(ground_set, 3, exact_config(0.9));
  EXPECT_TRUE(result.complete());
  EXPECT_EQ(result.included, 3u);
  EXPECT_EQ(result.state.selected_ids(), (std::vector<NodeId>{1, 3, 5}));
}

TEST(ExactBounding, ZeroBudgetIsImmediatelyComplete) {
  const Instance instance = random_instance(10, 2, 111);
  const auto ground_set = instance.ground_set();
  const auto result = bound(ground_set, 0, exact_config(0.9));
  EXPECT_TRUE(result.complete());
  EXPECT_EQ(result.included, 0u);
  EXPECT_EQ(result.excluded, 0u);
}

TEST(ExactBounding, BudgetEqualToGroundSetSelectsEverything) {
  const Instance instance = random_instance(10, 2, 112);
  const auto ground_set = instance.ground_set();
  const auto result = bound(ground_set, 10, exact_config(0.9));
  EXPECT_TRUE(result.complete());
  EXPECT_EQ(result.included, 10u);
  EXPECT_EQ(result.excluded, 0u);
}

TEST(ExactBounding, ReportsRoundCounts) {
  const Instance instance = random_instance(30, 4, 113);
  const auto ground_set = instance.ground_set();
  const auto result = bound(ground_set, 10, exact_config(0.9));
  // At minimum one shrink and one grow invocation happen (the convergence
  // checks themselves).
  EXPECT_GE(result.shrink_rounds, 1u);
  EXPECT_GE(result.grow_rounds, 1u);
}

TEST(ExactBounding, GreedyCompletionIsAtLeastAsGoodAsPlainGreedy) {
  // Exact bounding never removes optimal points, so greedy-after-bounding
  // should not be (materially) worse than plain centralized greedy.
  for (std::uint64_t seed : {121, 122, 123}) {
    const Instance instance = random_instance(40, 4, seed);
    const auto ground_set = instance.ground_set();
    const auto params = ObjectiveParams::from_alpha(0.9);
    const std::size_t k = 8;

    BoundingConfig config = exact_config(0.9);
    const auto bounding = bound(ground_set, k, config);

    std::vector<NodeId> members = bounding.state.unassigned_ids();
    auto sub = materialize_subproblem(ground_set, members, params, &bounding.state);
    auto completion = greedy_on_subproblem(sub, bounding.k_remaining, params);
    std::vector<NodeId> full = bounding.state.selected_ids();
    full.insert(full.end(), completion.selected.begin(), completion.selected.end());

    PairwiseObjective objective(ground_set, params);
    const double bounded_score = objective.evaluate(full);
    const double plain =
        centralized_greedy(instance.graph, instance.utilities, params, k).objective;
    // Not a theorem (greedy completion is heuristic), but empirically exact
    // bounding matches or beats plain greedy (Table 2); allow 2 % slack.
    EXPECT_GE(bounded_score, plain * 0.98) << "seed " << seed;
  }
}

TEST(ApproximateBounding, FullSamplingEqualsExactBounding) {
  // p = 1: every neighbor is sampled, so Uexp == Umin and the runs coincide.
  const Instance instance = random_instance(50, 5, 131);
  const auto ground_set = instance.ground_set();
  BoundingConfig exact = exact_config(0.9);
  BoundingConfig approx = exact;
  approx.sampling = BoundingSampling::kUniform;
  approx.sample_fraction = 1.0;

  const auto a = bound(ground_set, 10, exact);
  const auto b = bound(ground_set, 10, approx);
  EXPECT_EQ(a.included, b.included);
  EXPECT_EQ(a.excluded, b.excluded);
  EXPECT_EQ(a.state.selected_ids(), b.state.selected_ids());
  EXPECT_EQ(a.state.unassigned_ids(), b.state.unassigned_ids());
}

TEST(ApproximateBounding, MakesMoreDecisionsThanExact) {
  // Section 6.2: sampling raises Uexp above Umin, which both grows and
  // shrinks more aggressively.
  const Instance instance = random_instance(200, 8, 132);
  const auto ground_set = instance.ground_set();
  BoundingConfig exact = exact_config(0.9);
  BoundingConfig approx = exact;
  approx.sampling = BoundingSampling::kUniform;
  approx.sample_fraction = 0.3;

  const auto exact_result = bound(ground_set, 20, exact);
  const auto approx_result = bound(ground_set, 20, approx);
  EXPECT_GE(approx_result.included + approx_result.excluded,
            exact_result.included + exact_result.excluded);
}

TEST(ApproximateBounding, WeightedSamplingRespectsBudget) {
  const Instance instance = random_instance(100, 6, 133);
  const auto ground_set = instance.ground_set();
  BoundingConfig config = exact_config(0.9);
  config.sampling = BoundingSampling::kWeighted;
  config.sample_fraction = 0.3;
  const auto result = bound(ground_set, 15, config);
  EXPECT_LE(result.included, 15u);
  EXPECT_LE(result.k_remaining, 15u);
  EXPECT_EQ(result.included + result.k_remaining, 15u);
  // Shrinking must leave at least k candidates.
  EXPECT_GE(result.state.num_unassigned() + result.included, 15u);
}

TEST(ApproximateBounding, SamplingDecisionIsDeterministic) {
  BoundingConfig config = exact_config(0.5);
  config.sampling = BoundingSampling::kUniform;
  config.sample_fraction = 0.5;
  config.seed = 7;
  int included = 0;
  for (int i = 0; i < 1000; ++i) {
    const bool a = detail::sample_neighbor(config, 3, 11, i, 0.5f, 0.5);
    const bool b = detail::sample_neighbor(config, 3, 11, i, 0.5f, 0.5);
    EXPECT_EQ(a, b);
    included += a;
  }
  EXPECT_NEAR(included, 500, 60);
}

TEST(ApproximateBounding, WeightedSamplingFavorsHeavyEdges) {
  BoundingConfig config = exact_config(0.5);
  config.sampling = BoundingSampling::kWeighted;
  config.sample_fraction = 0.4;
  int heavy = 0, light = 0;
  for (int i = 0; i < 2000; ++i) {
    heavy += detail::sample_neighbor(config, 1, 5, i, 0.9f, 0.5);
    light += detail::sample_neighbor(config, 1, 5, i + 10'000, 0.1f, 0.5);
  }
  EXPECT_GT(heavy, light * 3);
}

TEST(Bounding, SmallTargetTendsToExcludeLargeTargetTendsToInclude) {
  // Section 6.2's qualitative finding, on a larger random instance.
  const Instance instance = random_instance(400, 10, 134);
  const auto ground_set = instance.ground_set();
  BoundingConfig config = exact_config(0.9);
  config.sampling = BoundingSampling::kUniform;
  config.sample_fraction = 0.3;

  const auto small_target = bound(ground_set, 40, config);    // 10 %
  const auto large_target = bound(ground_set, 320, config);   // 80 %
  EXPECT_GT(small_target.excluded, small_target.included);
  EXPECT_GT(large_target.included, large_target.excluded);
}

}  // namespace
}  // namespace subsel::core
