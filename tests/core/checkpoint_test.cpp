// Checkpoint/resume of the multi-round distributed greedy: a preempted run
// plus a resumed run must be indistinguishable from an uninterrupted one,
// mismatched configurations must not resume, and corrupt checkpoints must
// fall back to a clean restart.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "../testing/test_instances.h"
#include "core/distributed_greedy.h"

namespace subsel::core {
namespace {

using subsel::testing::Instance;
using subsel::testing::random_instance;

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "subsel_ckpt_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const { return (dir_ / name).string(); }

  DistributedGreedyConfig make_config(std::uint64_t seed = 71) const {
    DistributedGreedyConfig config;
    config.objective = ObjectiveParams::from_alpha(0.9);
    config.num_machines = 8;
    config.num_rounds = 6;
    config.adaptive_partitioning = false;
    config.seed = seed;
    return config;
  }

  std::filesystem::path dir_;
};

TEST_F(CheckpointTest, PreemptThenResumeMatchesUninterruptedRun) {
  const Instance instance = random_instance(400, 5, 960);
  const auto ground_set = instance.ground_set();

  const auto uninterrupted = distributed_greedy(ground_set, 40, make_config());

  auto config = make_config();
  config.checkpoint_file = path("run.ckpt");
  config.stop_after_round = 3;
  const auto partial = distributed_greedy(ground_set, 40, config);
  EXPECT_TRUE(partial.preempted);
  EXPECT_TRUE(partial.selected.empty());
  EXPECT_EQ(partial.rounds.size(), 3u);
  EXPECT_TRUE(std::filesystem::exists(config.checkpoint_file));

  config.stop_after_round = 0;
  const auto resumed = distributed_greedy(ground_set, 40, config);
  EXPECT_EQ(resumed.resumed_rounds, 3u);
  EXPECT_EQ(resumed.rounds.size(), 3u);  // only the rounds it executed
  EXPECT_FALSE(resumed.preempted);
  EXPECT_EQ(resumed.selected, uninterrupted.selected);
  EXPECT_EQ(resumed.objective, uninterrupted.objective);
  // Completion removes the checkpoint.
  EXPECT_FALSE(std::filesystem::exists(config.checkpoint_file));
}

TEST_F(CheckpointTest, RepeatedPreemptionsStillConverge) {
  const Instance instance = random_instance(300, 4, 961);
  const auto ground_set = instance.ground_set();
  const auto uninterrupted = distributed_greedy(ground_set, 30, make_config(72));

  auto config = make_config(72);
  config.checkpoint_file = path("steps.ckpt");
  config.stop_after_round = 1;  // one round per invocation
  std::size_t invocations = 0;
  DistributedGreedyResult result;
  do {
    result = distributed_greedy(ground_set, 30, config);
    ++invocations;
    ASSERT_LE(invocations, 10u) << "did not converge";
  } while (result.preempted);
  EXPECT_EQ(invocations, 6u);  // one per round
  EXPECT_EQ(result.selected, uninterrupted.selected);
}

TEST_F(CheckpointTest, MismatchedSeedIgnoresCheckpoint) {
  const Instance instance = random_instance(200, 4, 962);
  const auto ground_set = instance.ground_set();

  auto config = make_config(73);
  config.checkpoint_file = path("mismatch.ckpt");
  config.stop_after_round = 2;
  (void)distributed_greedy(ground_set, 20, config);
  ASSERT_TRUE(std::filesystem::exists(config.checkpoint_file));

  // Different seed -> different run; the stale checkpoint must be ignored
  // and the run must restart from round 1 (6 executed rounds, 0 resumed).
  auto other = make_config(74);
  other.checkpoint_file = path("mismatch.ckpt");
  const auto result = distributed_greedy(ground_set, 20, other);
  EXPECT_EQ(result.resumed_rounds, 0u);
  EXPECT_EQ(result.rounds.size(), 6u);
  const auto reference = distributed_greedy(ground_set, 20, make_config(74));
  EXPECT_EQ(result.selected, reference.selected);
}

TEST_F(CheckpointTest, CorruptCheckpointFallsBackToRestart) {
  const Instance instance = random_instance(200, 4, 963);
  const auto ground_set = instance.ground_set();

  auto config = make_config(75);
  config.checkpoint_file = path("corrupt.ckpt");
  {
    std::ofstream out(config.checkpoint_file, std::ios::binary);
    out << "not a checkpoint";
  }
  const auto result = distributed_greedy(ground_set, 20, config);
  EXPECT_EQ(result.resumed_rounds, 0u);
  EXPECT_EQ(result.selected.size(), 20u);
  const auto reference = distributed_greedy(ground_set, 20, make_config(75));
  EXPECT_EQ(result.selected, reference.selected);
}

TEST_F(CheckpointTest, CheckpointingDoesNotChangeTheResult) {
  const Instance instance = random_instance(250, 5, 964);
  const auto ground_set = instance.ground_set();
  const auto plain = distributed_greedy(ground_set, 25, make_config(76));
  auto config = make_config(76);
  config.checkpoint_file = path("noop.ckpt");
  const auto checkpointed = distributed_greedy(ground_set, 25, config);
  EXPECT_EQ(checkpointed.selected, plain.selected);
  EXPECT_EQ(checkpointed.objective, plain.objective);
}

TEST_F(CheckpointTest, WorksTogetherWithStochasticSolver) {
  const Instance instance = random_instance(300, 4, 965);
  const auto ground_set = instance.ground_set();
  auto config = make_config(77);
  config.partition_solver = PartitionSolver::kStochastic;
  const auto uninterrupted = distributed_greedy(ground_set, 30, config);

  config.checkpoint_file = path("stochastic.ckpt");
  config.stop_after_round = 2;
  (void)distributed_greedy(ground_set, 30, config);
  config.stop_after_round = 0;
  const auto resumed = distributed_greedy(ground_set, 30, config);
  EXPECT_EQ(resumed.selected, uninterrupted.selected);
}

}  // namespace
}  // namespace subsel::core
