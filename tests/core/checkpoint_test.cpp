// Checkpoint/resume of the multi-round distributed greedy: a preempted run
// plus a resumed run must be indistinguishable from an uninterrupted one,
// mismatched configurations must not resume, corrupt checkpoints must fall
// back to a clean restart — including on the out-of-core path, where a
// cooperative cancel mid-solve on a DiskGroundSet followed by a resume must
// be bit-identical to an uninterrupted in-memory run — and a crash injected
// mid-flush must leave the previous complete checkpoint byte-identical.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "../testing/test_instances.h"
#include "common/failpoint.h"
#include "core/distributed_greedy.h"
#include "graph/disk_ground_set.h"

namespace subsel::core {
namespace {

using subsel::testing::Instance;
using subsel::testing::random_instance;

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "subsel_ckpt_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const { return (dir_ / name).string(); }

  static std::string read_bytes(const std::string& file) {
    std::ifstream in(file, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  }

  DistributedGreedyConfig make_config(std::uint64_t seed = 71) const {
    DistributedGreedyConfig config;
    config.objective = ObjectiveParams::from_alpha(0.9);
    config.num_machines = 8;
    config.num_rounds = 6;
    config.adaptive_partitioning = false;
    config.seed = seed;
    return config;
  }

  std::filesystem::path dir_;
};

TEST_F(CheckpointTest, PreemptThenResumeMatchesUninterruptedRun) {
  const Instance instance = random_instance(400, 5, 960);
  const auto ground_set = instance.ground_set();

  const auto uninterrupted = distributed_greedy(ground_set, 40, make_config());

  auto config = make_config();
  config.checkpoint_file = path("run.ckpt");
  config.stop_after_round = 3;
  const auto partial = distributed_greedy(ground_set, 40, config);
  EXPECT_TRUE(partial.preempted);
  EXPECT_TRUE(partial.selected.empty());
  EXPECT_EQ(partial.rounds.size(), 3u);
  EXPECT_TRUE(std::filesystem::exists(config.checkpoint_file));

  config.stop_after_round = 0;
  const auto resumed = distributed_greedy(ground_set, 40, config);
  EXPECT_EQ(resumed.resumed_rounds, 3u);
  EXPECT_EQ(resumed.rounds.size(), 3u);  // only the rounds it executed
  EXPECT_FALSE(resumed.preempted);
  EXPECT_EQ(resumed.selected, uninterrupted.selected);
  EXPECT_EQ(resumed.objective, uninterrupted.objective);
  // Completion removes the checkpoint.
  EXPECT_FALSE(std::filesystem::exists(config.checkpoint_file));
}

TEST_F(CheckpointTest, RepeatedPreemptionsStillConverge) {
  const Instance instance = random_instance(300, 4, 961);
  const auto ground_set = instance.ground_set();
  const auto uninterrupted = distributed_greedy(ground_set, 30, make_config(72));

  auto config = make_config(72);
  config.checkpoint_file = path("steps.ckpt");
  config.stop_after_round = 1;  // one round per invocation
  std::size_t invocations = 0;
  DistributedGreedyResult result;
  do {
    result = distributed_greedy(ground_set, 30, config);
    ++invocations;
    ASSERT_LE(invocations, 10u) << "did not converge";
  } while (result.preempted);
  EXPECT_EQ(invocations, 6u);  // one per round
  EXPECT_EQ(result.selected, uninterrupted.selected);
}

TEST_F(CheckpointTest, MismatchedSeedIgnoresCheckpoint) {
  const Instance instance = random_instance(200, 4, 962);
  const auto ground_set = instance.ground_set();

  auto config = make_config(73);
  config.checkpoint_file = path("mismatch.ckpt");
  config.stop_after_round = 2;
  (void)distributed_greedy(ground_set, 20, config);
  ASSERT_TRUE(std::filesystem::exists(config.checkpoint_file));

  // Different seed -> different run; the stale checkpoint must be ignored
  // and the run must restart from round 1 (6 executed rounds, 0 resumed).
  auto other = make_config(74);
  other.checkpoint_file = path("mismatch.ckpt");
  const auto result = distributed_greedy(ground_set, 20, other);
  EXPECT_EQ(result.resumed_rounds, 0u);
  EXPECT_EQ(result.rounds.size(), 6u);
  const auto reference = distributed_greedy(ground_set, 20, make_config(74));
  EXPECT_EQ(result.selected, reference.selected);
}

TEST_F(CheckpointTest, CorruptCheckpointFallsBackToRestart) {
  const Instance instance = random_instance(200, 4, 963);
  const auto ground_set = instance.ground_set();

  auto config = make_config(75);
  config.checkpoint_file = path("corrupt.ckpt");
  {
    std::ofstream out(config.checkpoint_file, std::ios::binary);
    out << "not a checkpoint";
  }
  const auto result = distributed_greedy(ground_set, 20, config);
  EXPECT_EQ(result.resumed_rounds, 0u);
  EXPECT_EQ(result.selected.size(), 20u);
  const auto reference = distributed_greedy(ground_set, 20, make_config(75));
  EXPECT_EQ(result.selected, reference.selected);
}

TEST_F(CheckpointTest, CheckpointingDoesNotChangeTheResult) {
  const Instance instance = random_instance(250, 5, 964);
  const auto ground_set = instance.ground_set();
  const auto plain = distributed_greedy(ground_set, 25, make_config(76));
  auto config = make_config(76);
  config.checkpoint_file = path("noop.ckpt");
  const auto checkpointed = distributed_greedy(ground_set, 25, config);
  EXPECT_EQ(checkpointed.selected, plain.selected);
  EXPECT_EQ(checkpointed.objective, plain.objective);
}

TEST_F(CheckpointTest, DiskGroundSetCancelMidSolveThenResumeIsBitIdentical) {
  // The out-of-core mirror of PreemptThenResumeMatchesUninterruptedRun, with
  // the preemption fired cooperatively from the progress callback (what a
  // SIGTERM handler does) instead of a scheduled stop. The adjacency stays
  // on disk behind a deliberately tiny sharded cache with prefetch on, so
  // cancellation interleaves with paging and in-flight prefetch tasks.
  const Instance instance = random_instance(400, 5, 970);
  const auto memory_ground_set = instance.ground_set();
  const std::string graph_path = path("disk_cancel.graph");
  instance.graph.save(graph_path);

  graph::DiskGroundSetConfig cache;
  cache.block_edges = 64;
  cache.max_cached_blocks = 6;
  cache.num_shards = 3;
  const graph::DiskGroundSet disk(graph_path, instance.utilities, cache);

  const auto uninterrupted =
      distributed_greedy(memory_ground_set, 40, make_config(81));

  auto config = make_config(81);
  config.prefetch_depth = 2;
  config.checkpoint_file = path("disk_cancel.ckpt");
  config.progress = [&config](const ProgressEvent& event) {
    if (event.step >= 2) config.cancel.request_stop();
  };
  const auto cancelled = distributed_greedy(disk, 40, config);
  EXPECT_TRUE(cancelled.preempted);
  EXPECT_TRUE(cancelled.selected.empty());
  EXPECT_EQ(cancelled.rounds.size(), 2u);
  ASSERT_TRUE(std::filesystem::exists(config.checkpoint_file));

  // Re-arm the shared token and resume to completion on the same disk set.
  config.cancel.reset();
  config.progress = nullptr;
  const auto resumed = distributed_greedy(disk, 40, config);
  EXPECT_EQ(resumed.resumed_rounds, 2u);
  EXPECT_FALSE(resumed.preempted);
  EXPECT_EQ(resumed.selected, uninterrupted.selected);
  EXPECT_EQ(resumed.objective, uninterrupted.objective);
  EXPECT_FALSE(std::filesystem::exists(config.checkpoint_file));
  EXPECT_GT(disk.stats().misses + disk.stats().prefetch_loaded, 0u)
      << "the run must actually have paged from disk";
}

TEST_F(CheckpointTest, DiskAndMemoryCheckpointsAreInterchangeable) {
  // A checkpoint written by an out-of-core run must resume an in-memory run
  // (and vice versa): the fingerprint covers the run configuration, not the
  // ground-set backend, because the data is identical.
  const Instance instance = random_instance(300, 4, 971);
  const auto memory_ground_set = instance.ground_set();
  const std::string graph_path = path("disk_swap.graph");
  instance.graph.save(graph_path);
  const graph::DiskGroundSet disk(graph_path, instance.utilities);

  const auto uninterrupted =
      distributed_greedy(memory_ground_set, 30, make_config(82));

  auto config = make_config(82);
  config.checkpoint_file = path("disk_swap.ckpt");
  config.stop_after_round = 3;
  (void)distributed_greedy(disk, 30, config);  // disk run writes rounds 1-3
  config.stop_after_round = 0;
  const auto resumed = distributed_greedy(memory_ground_set, 30, config);
  EXPECT_EQ(resumed.resumed_rounds, 3u);
  EXPECT_EQ(resumed.selected, uninterrupted.selected);
}

TEST_F(CheckpointTest, TornCheckpointWriteKeepsPreviousCheckpointIntact) {
  // A crash injected mid-flush (half the bytes written, no rename) must
  // leave the previously published checkpoint byte-identical, and a resume
  // from it must still converge to the uninterrupted answer.
  failpoint::disarm_all();
  const Instance instance = random_instance(400, 5, 972);
  const auto ground_set = instance.ground_set();
  const auto uninterrupted = distributed_greedy(ground_set, 40, make_config(83));

  auto config = make_config(83);
  config.checkpoint_file = path("torn.ckpt");
  config.stop_after_round = 2;
  (void)distributed_greedy(ground_set, 40, config);  // publishes round 2
  ASSERT_TRUE(std::filesystem::exists(config.checkpoint_file));
  const std::string before_crash = read_bytes(config.checkpoint_file);
  ASSERT_FALSE(before_crash.empty());

  // Round 3 executes, but its checkpoint flush crashes halfway through.
  failpoint::arm_from_spec("checkpoint.write=nth(1)");
  config.stop_after_round = 1;
  const auto crashed = distributed_greedy(ground_set, 40, config);
  failpoint::disarm_all();
  EXPECT_TRUE(crashed.preempted);
  EXPECT_EQ(crashed.resumed_rounds, 2u);

  // The published file is untouched; the torn half landed in the .tmp side.
  EXPECT_EQ(read_bytes(config.checkpoint_file), before_crash);
  const std::string tmp = config.checkpoint_file + ".tmp";
  ASSERT_TRUE(std::filesystem::exists(tmp));
  EXPECT_LT(std::filesystem::file_size(tmp), before_crash.size());

  // Resume: round 3's save was lost, so the run re-executes from round 3
  // and still lands exactly on the uninterrupted selection.
  config.stop_after_round = 0;
  const auto resumed = distributed_greedy(ground_set, 40, config);
  EXPECT_EQ(resumed.resumed_rounds, 2u);
  EXPECT_EQ(resumed.selected, uninterrupted.selected);
  EXPECT_EQ(resumed.objective, uninterrupted.objective);
}

TEST_F(CheckpointTest, CheckpointEveryGatesSaves) {
  const Instance instance = random_instance(300, 4, 973);
  const auto ground_set = instance.ground_set();
  const auto uninterrupted = distributed_greedy(ground_set, 30, make_config(84));

  auto config = make_config(84);
  config.checkpoint_file = path("gated.ckpt");
  config.checkpoint_every = 3;  // only rounds 3 and (if not final) 6 persist

  // Rounds 1-2 complete but neither is a multiple of 3: nothing on disk.
  config.stop_after_round = 2;
  (void)distributed_greedy(ground_set, 30, config);
  EXPECT_FALSE(std::filesystem::exists(config.checkpoint_file));

  // A fresh run through round 3 publishes the first gated checkpoint.
  config.stop_after_round = 3;
  (void)distributed_greedy(ground_set, 30, config);
  ASSERT_TRUE(std::filesystem::exists(config.checkpoint_file));

  config.stop_after_round = 0;
  const auto resumed = distributed_greedy(ground_set, 30, config);
  EXPECT_EQ(resumed.resumed_rounds, 3u);
  EXPECT_EQ(resumed.selected, uninterrupted.selected);
}

TEST_F(CheckpointTest, DegradedRunKeepsCheckpointAndStillReturnsValidSelection) {
  const Instance instance = random_instance(400, 5, 974);
  const auto ground_set = instance.ground_set();
  const auto uninterrupted = distributed_greedy(ground_set, 40, make_config(85));

  auto config = make_config(85);
  config.checkpoint_file = path("degraded.ckpt");
  config.stop_after_round = 2;
  (void)distributed_greedy(ground_set, 40, config);  // checkpoint after round 2
  ASSERT_TRUE(std::filesystem::exists(config.checkpoint_file));

  // Resume under an already-expired deadline: the run must degrade — a VALID
  // size-k selection from the round-2 survivors — and keep the checkpoint so
  // an unhurried retry can still finish properly.
  config.stop_after_round = 0;
  config.deadline = Deadline::after_ms(0);
  const auto degraded = distributed_greedy(ground_set, 40, config);
  EXPECT_TRUE(degraded.degraded);
  EXPECT_FALSE(degraded.degraded_reason.empty());
  EXPECT_FALSE(degraded.preempted);
  EXPECT_EQ(degraded.selected.size(), 40u);
  EXPECT_TRUE(std::filesystem::exists(config.checkpoint_file));

  // The unhurried retry resumes from the kept checkpoint and converges.
  config.deadline = Deadline::unlimited();
  const auto finished = distributed_greedy(ground_set, 40, config);
  EXPECT_FALSE(finished.degraded);
  EXPECT_EQ(finished.resumed_rounds, 2u);
  EXPECT_EQ(finished.selected, uninterrupted.selected);
  EXPECT_FALSE(std::filesystem::exists(config.checkpoint_file));
}

TEST_F(CheckpointTest, WorksTogetherWithStochasticSolver) {
  const Instance instance = random_instance(300, 4, 965);
  const auto ground_set = instance.ground_set();
  auto config = make_config(77);
  config.partition_solver = PartitionSolver::kStochastic;
  const auto uninterrupted = distributed_greedy(ground_set, 30, config);

  config.checkpoint_file = path("stochastic.ckpt");
  config.stop_after_round = 2;
  (void)distributed_greedy(ground_set, 30, config);
  config.stop_after_round = 0;
  const auto resumed = distributed_greedy(ground_set, 30, config);
  EXPECT_EQ(resumed.selected, uninterrupted.selected);
}

}  // namespace
}  // namespace subsel::core
