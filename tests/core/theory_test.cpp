// Property tests for the paper's theory, swept over randomized instances
// with parameterized gtest:
//   - Section 3: pairwise functions are always submodular; the Appendix-A
//     offset makes them monotone.
//   - Lemmas 4.3/4.4: exact bounding never mislabels a point of the optimal
//     subset (safety, checked against brute force).
//   - Exact bounding + greedy completion is a 1/2-approximation (Sec. 4.3).
//   - Theorem 4.6: approximate bounding with sampling probability p, then
//     greedy completion, achieves f(S) >= f(S*) / (2(1 + gamma(1 - p^2))).
//   - Greedy implementations agree: Algorithm 2 == naive Algorithm 1 ==
//     lazy greedy, and all achieve (1 - 1/e) against brute force.
//   - Δ schedules satisfy the Δ(|V|, r, r, k) = k contract.
#include <gtest/gtest.h>

#include <cmath>

#include "../testing/test_instances.h"
#include "baselines/baselines.h"
#include "core/bounding.h"
#include "core/distributed_greedy.h"
#include "core/greedy.h"
#include "core/selection_pipeline.h"

namespace subsel::core {
namespace {

using subsel::testing::Instance;
using subsel::testing::brute_force_optimum;
using subsel::testing::random_instance;

// ---------------------------------------------------------------------------
// Submodularity and monotonicity (Section 3, Appendix A)

class SubmodularitySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SubmodularitySweep, DiminishingReturnsOnRandomChains) {
  // For random B ⊆ A and e ∉ A: gain(e | A) <= gain(e | B).
  const std::uint64_t seed = GetParam();
  const Instance instance = random_instance(40, 5, seed);
  const auto ground_set = instance.ground_set();
  PairwiseObjective objective(ground_set, ObjectiveParams::from_alpha(0.5));

  Rng rng(seed * 31 + 7);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint8_t> small(40, 0), large(40, 0);
    for (std::size_t i = 0; i < 40; ++i) {
      const double coin = rng.uniform();
      if (coin < 0.25) {
        small[i] = large[i] = 1;  // in B (hence in A)
      } else if (coin < 0.55) {
        large[i] = 1;  // in A only
      }
    }
    const auto e = static_cast<NodeId>(rng.uniform_index(40));
    if (large[static_cast<std::size_t>(e)] != 0) continue;
    EXPECT_LE(objective.marginal_gain(large, e),
              objective.marginal_gain(small, e) + 1e-12)
        << "seed " << seed << " trial " << trial;
  }
}

TEST_P(SubmodularitySweep, MonotoneAfterAppendixAOffset) {
  // With u'(v) = u(v) + delta, adding any element never decreases f.
  const std::uint64_t seed = GetParam();
  Instance instance = random_instance(40, 6, seed, /*max_weight=*/1.0,
                                      /*max_utility=*/0.3);  // pairwise-heavy
  const auto base_ground_set = instance.ground_set();
  PairwiseObjective base(base_ground_set, ObjectiveParams::from_alpha(0.3));
  const double delta = base.monotonicity_offset();

  Instance shifted = instance;
  for (double& u : shifted.utilities) u += delta;
  const auto ground_set = shifted.ground_set();
  PairwiseObjective objective(ground_set, ObjectiveParams::from_alpha(0.3));

  Rng rng(seed * 17 + 3);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint8_t> membership(40, 0);
    for (auto& bit : membership) bit = rng.uniform() < 0.4 ? 1 : 0;
    const auto e = static_cast<NodeId>(rng.uniform_index(40));
    if (membership[static_cast<std::size_t>(e)] != 0) continue;
    EXPECT_GE(objective.marginal_gain(membership, e), -1e-12)
        << "seed " << seed << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubmodularitySweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// ---------------------------------------------------------------------------
// Bounding safety and approximation (Lemmas 4.3/4.4, Sec. 4.3, Theorem 4.6)

class BoundingTheorySweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(BoundingTheorySweep, ExactBoundingNeverMislabelsOptimalPoints) {
  const auto [seed, alpha] = GetParam();
  const Instance instance = random_instance(14, 3, seed);
  const auto ground_set = instance.ground_set();
  const auto params = ObjectiveParams::from_alpha(alpha);

  for (const std::size_t k : {3u, 7u, 11u}) {
    std::vector<NodeId> optimal;
    brute_force_optimum(ground_set, params, k, &optimal);

    BoundingConfig config;
    config.objective = params;
    const auto result = bound(ground_set, k, config);
    for (NodeId v = 0; v < 14; ++v) {
      const bool in_optimal = std::binary_search(optimal.begin(), optimal.end(), v);
      if (result.state.is_selected(v)) {
        EXPECT_TRUE(in_optimal) << "k=" << k << " grew non-optimal " << v;
      }
      if (result.state.is_discarded(v)) {
        EXPECT_FALSE(in_optimal) << "k=" << k << " shrank optimal " << v;
      }
    }
  }
}

TEST_P(BoundingTheorySweep, ExactBoundingPlusGreedyIsHalfApproximation) {
  const auto [seed, alpha] = GetParam();
  const Instance instance = random_instance(14, 3, seed + 100);
  const auto ground_set = instance.ground_set();
  const auto params = ObjectiveParams::from_alpha(alpha);
  const std::size_t k = 5;
  const double optimum = brute_force_optimum(ground_set, params, k);

  SelectionPipelineConfig config;
  config.objective = params;
  config.bounding.sampling = BoundingSampling::kNone;
  config.greedy.num_machines = 1;
  config.greedy.num_rounds = 1;
  const auto result = select_subset(ground_set, k, config);
  EXPECT_GE(result.objective, 0.5 * optimum - 1e-9) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndAlphas, BoundingTheorySweep,
    ::testing::Combine(::testing::Values(11u, 12u, 13u, 14u),
                       ::testing::Values(0.9, 0.5)));

class Theorem46Sweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(Theorem46Sweep, ApproximateBoundingMeetsTheGuarantee) {
  // f(S) >= f(S*) / (2 (1 + gamma (1 - p^2))), gamma = max Umax(v)/Umin(v)
  // at the start. Utilities are kept dominant so gamma stays positive and
  // finite (the theorem's precondition Umin > 0).
  const auto [seed, p] = GetParam();
  Instance instance = random_instance(14, 3, seed, /*max_weight=*/0.2,
                                      /*max_utility=*/2.0);
  const auto params = ObjectiveParams::from_alpha(0.9);
  {
    // Shift utilities by the Appendix-A offset so Umin(v) >= u_orig(v) > 0
    // for every v — the theorem's precondition — while gamma stays finite.
    const auto raw_ground_set = instance.ground_set();
    const double delta =
        PairwiseObjective(raw_ground_set, params).monotonicity_offset();
    for (double& u : instance.utilities) u += delta;
  }
  const auto ground_set = instance.ground_set();
  const std::size_t k = 5;
  const double optimum = brute_force_optimum(ground_set, params, k);

  // gamma from the initial bounds (empty partial solution).
  std::vector<double> u_min, u_max;
  BoundingConfig probe;
  probe.objective = params;
  core::detail::compute_utility_bounds(ground_set, SelectionState(14), probe, 0,
                                       u_min, u_max);
  double gamma = 1.0;
  bool gamma_valid = true;
  for (std::size_t i = 0; i < u_min.size(); ++i) {
    if (u_min[i] <= 0.0) {
      gamma_valid = false;
      break;
    }
    gamma = std::max(gamma, u_max[i] / u_min[i]);
  }
  if (!gamma_valid) GTEST_SKIP() << "instance violates Umin > 0 precondition";

  SelectionPipelineConfig config;
  config.objective = params;
  config.bounding.sampling = BoundingSampling::kUniform;
  config.bounding.sample_fraction = p;
  config.bounding.seed = seed;
  config.greedy.num_machines = 1;
  config.greedy.num_rounds = 1;
  const auto result = select_subset(ground_set, k, config);

  const double bound = optimum / (2.0 * (1.0 + gamma * (1.0 - p * p)));
  EXPECT_GE(result.objective, bound - 1e-9)
      << "seed " << seed << " p " << p << " gamma " << gamma;
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndSamplingRates, Theorem46Sweep,
    ::testing::Combine(::testing::Values(21u, 22u, 23u, 24u, 25u),
                       ::testing::Values(0.3, 0.7, 1.0)));

// ---------------------------------------------------------------------------
// Greedy equivalences and the (1 - 1/e) guarantee

class GreedyEquivalenceSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GreedyEquivalenceSweep, AllImplementationsAgree) {
  const std::uint64_t seed = GetParam();
  const Instance instance = random_instance(60, 5, seed);
  const auto ground_set = instance.ground_set();
  const auto params = ObjectiveParams::from_alpha(0.9);
  const std::size_t k = 12;

  const auto fast = centralized_greedy(instance.graph, instance.utilities, params, k);
  const auto naive = naive_greedy(ground_set, params, k);
  const auto lazy = baselines::lazy_greedy(ground_set, params, k);

  EXPECT_EQ(fast.selected, naive.selected) << "seed " << seed;
  EXPECT_EQ(fast.selected, lazy.selected) << "seed " << seed;
  EXPECT_NEAR(fast.objective, naive.objective, 1e-9);
  EXPECT_NEAR(fast.objective, lazy.objective, 1e-9);
}

TEST_P(GreedyEquivalenceSweep, GreedyMeetsOneMinusOneOverE) {
  const std::uint64_t seed = GetParam();
  // Monotone regime (utility-dominant) so the Nemhauser bound applies.
  const Instance instance = random_instance(13, 3, seed, /*max_weight=*/0.3,
                                            /*max_utility=*/2.0);
  const auto ground_set = instance.ground_set();
  const auto params = ObjectiveParams::from_alpha(0.9);
  const std::size_t k = 5;
  const double optimum = brute_force_optimum(ground_set, params, k);
  const auto greedy = naive_greedy(ground_set, params, k);
  EXPECT_GE(greedy.objective, (1.0 - 1.0 / std::exp(1.0)) * optimum - 1e-9)
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyEquivalenceSweep,
                         ::testing::Values(31u, 32u, 33u, 34u, 35u, 36u));

// ---------------------------------------------------------------------------
// Δ schedule contract (Section 4.4)

class DeltaScheduleSweep
    : public ::testing::TestWithParam<std::tuple<double, std::size_t>> {};

TEST_P(DeltaScheduleSweep, LastRoundIsExactlyKAndSizesDecrease) {
  const auto [gamma, rounds] = GetParam();
  const auto delta = linear_delta(gamma);
  for (const std::size_t v0 : {std::size_t{100}, std::size_t{5000},
                               std::size_t{1000000}}) {
    for (const std::size_t k : {std::size_t{1}, std::size_t{10}, v0 / 2, v0}) {
      EXPECT_EQ(delta(v0, rounds, rounds, k), k)
          << "gamma " << gamma << " v0 " << v0 << " k " << k;
      std::size_t previous = v0;
      for (std::size_t round = 1; round <= rounds; ++round) {
        const std::size_t target = delta(v0, rounds, round, k);
        EXPECT_GE(target, k);
        EXPECT_LE(target, std::max(previous, k))
            << "round " << round << " grew the target";
        previous = target;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(GammasAndRounds, DeltaScheduleSweep,
                         ::testing::Combine(::testing::Values(0.25, 0.5, 0.75, 1.0),
                                            ::testing::Values(1u, 4u, 32u)));

}  // namespace
}  // namespace subsel::core
