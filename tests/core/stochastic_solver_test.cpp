// The pluggable per-partition solver ("any centralized version of the
// algorithm can run inside a partition", Section 3): stochastic greedy over
// materialized subproblems, standalone and inside the distributed drivers.
#include <gtest/gtest.h>

#include <set>

#include "../testing/test_instances.h"
#include "core/distributed_greedy.h"
#include "core/greedy.h"

namespace subsel::core {
namespace {

using subsel::testing::Instance;
using subsel::testing::random_instance;

Subproblem full_subproblem(const Instance& instance, ObjectiveParams params) {
  const auto ground_set = instance.ground_set();
  std::vector<NodeId> all(instance.utilities.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = static_cast<NodeId>(i);
  return materialize_subproblem(ground_set, std::move(all), params);
}

TEST(StochasticSubproblemSolver, SelectsKUniqueIds) {
  const Instance instance = random_instance(300, 5, 951);
  const auto params = ObjectiveParams::from_alpha(0.9);
  const Subproblem sub = full_subproblem(instance, params);
  const auto result = stochastic_greedy_on_subproblem(sub, 40, params, 0.1, 7);
  EXPECT_EQ(result.selected.size(), 40u);
  std::set<NodeId> unique(result.selected.begin(), result.selected.end());
  EXPECT_EQ(unique.size(), 40u);
}

TEST(StochasticSubproblemSolver, FullSampleMatchesExactGreedy) {
  // epsilon so small that every step samples the whole live set: identical
  // decisions to the priority-queue Algorithm 2.
  const Instance instance = random_instance(80, 4, 952);
  const auto params = ObjectiveParams::from_alpha(0.9);
  const Subproblem sub = full_subproblem(instance, params);
  const auto exact = greedy_on_subproblem(sub, 12, params);
  const auto stochastic =
      stochastic_greedy_on_subproblem(sub, 12, params, 1e-9, 3);
  EXPECT_EQ(stochastic.selected, exact.selected);
  EXPECT_NEAR(stochastic.objective, exact.objective, 1e-9);
}

TEST(StochasticSubproblemSolver, QualityNearExactOnAverage) {
  const Instance instance = random_instance(500, 5, 953);
  const auto params = ObjectiveParams::from_alpha(0.9);
  const Subproblem sub = full_subproblem(instance, params);
  const double exact = greedy_on_subproblem(sub, 50, params).objective;
  double stochastic_total = 0.0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    stochastic_total +=
        stochastic_greedy_on_subproblem(sub, 50, params, 0.1, seed).objective;
  }
  EXPECT_GT(stochastic_total / 5.0, 0.95 * exact);
}

TEST(StochasticSubproblemSolver, ObjectiveMatchesReEvaluation) {
  const Instance instance = random_instance(120, 4, 954);
  const auto ground_set = instance.ground_set();
  const auto params = ObjectiveParams::from_alpha(0.7);
  const Subproblem sub = full_subproblem(instance, params);
  const auto result = stochastic_greedy_on_subproblem(sub, 20, params, 0.2, 5);
  PairwiseObjective objective(ground_set, params);
  EXPECT_NEAR(result.objective, objective.evaluate(result.selected), 1e-9);
}

TEST(StochasticSubproblemSolver, RejectsBadEpsilon) {
  const Instance instance = random_instance(30, 3, 955);
  const auto params = ObjectiveParams::from_alpha(0.9);
  const Subproblem sub = full_subproblem(instance, params);
  EXPECT_THROW(stochastic_greedy_on_subproblem(sub, 5, params, 0.0, 1),
               std::invalid_argument);
  EXPECT_THROW(stochastic_greedy_on_subproblem(sub, 5, params, 1.0, 1),
               std::invalid_argument);
}

TEST(DistributedGreedyStochastic, SolverChoiceKeepsQuality) {
  const Instance instance = random_instance(600, 6, 956);
  const auto ground_set = instance.ground_set();
  double pq_total = 0.0, stochastic_total = 0.0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    DistributedGreedyConfig config;
    config.objective = ObjectiveParams::from_alpha(0.9);
    config.num_machines = 8;
    config.num_rounds = 4;
    config.seed = seed;
    pq_total += distributed_greedy(ground_set, 60, config).objective;
    config.partition_solver = PartitionSolver::kStochastic;
    stochastic_total += distributed_greedy(ground_set, 60, config).objective;
  }
  EXPECT_EQ(pq_total > 0, true);
  EXPECT_NEAR(stochastic_total / pq_total, 1.0, 0.06);
}

TEST(DistributedGreedyStochastic, DeterministicGivenSeed) {
  const Instance instance = random_instance(200, 4, 957);
  const auto ground_set = instance.ground_set();
  DistributedGreedyConfig config;
  config.objective = ObjectiveParams::from_alpha(0.9);
  config.num_machines = 4;
  config.num_rounds = 3;
  config.partition_solver = PartitionSolver::kStochastic;
  const auto a = distributed_greedy(ground_set, 20, config);
  const auto b = distributed_greedy(ground_set, 20, config);
  EXPECT_EQ(a.selected, b.selected);
}

}  // namespace
}  // namespace subsel::core
