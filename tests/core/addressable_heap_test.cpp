#include "core/addressable_heap.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"

namespace subsel::core {
namespace {

TEST(AddressableMaxHeap, PopsInDescendingOrder) {
  const std::vector<double> priorities{3.0, 1.0, 4.0, 1.5, 5.0};
  AddressableMaxHeap heap(priorities);
  std::vector<double> popped;
  while (!heap.empty()) {
    const auto id = heap.pop_max();
    popped.push_back(priorities[id]);
  }
  EXPECT_TRUE(std::is_sorted(popped.rbegin(), popped.rend()));
  EXPECT_EQ(popped.front(), 5.0);
  EXPECT_EQ(popped.back(), 1.0);
}

TEST(AddressableMaxHeap, TieBreaksOnSmallerId) {
  const std::vector<double> priorities{2.0, 2.0, 2.0};
  AddressableMaxHeap heap(priorities);
  EXPECT_EQ(heap.pop_max(), 0u);
  EXPECT_EQ(heap.pop_max(), 1u);
  EXPECT_EQ(heap.pop_max(), 2u);
}

TEST(AddressableMaxHeap, ContainsTracksLiveness) {
  const std::vector<double> priorities{1.0, 2.0};
  AddressableMaxHeap heap(priorities);
  EXPECT_TRUE(heap.contains(0));
  EXPECT_TRUE(heap.contains(1));
  EXPECT_EQ(heap.pop_max(), 1u);
  EXPECT_FALSE(heap.contains(1));
  EXPECT_TRUE(heap.contains(0));
}

TEST(AddressableMaxHeap, DecreaseWeightReordersHeap) {
  const std::vector<double> priorities{5.0, 4.0, 3.0};
  AddressableMaxHeap heap(priorities);
  heap.decrease_weight_by(0, 3.0);  // 0 drops to 2.0
  EXPECT_EQ(heap.pop_max(), 1u);
  EXPECT_EQ(heap.pop_max(), 2u);
  EXPECT_EQ(heap.pop_max(), 0u);
  EXPECT_DOUBLE_EQ(heap.priority(0), 2.0);
}

TEST(AddressableMaxHeap, UpdateCanIncrease) {
  const std::vector<double> priorities{1.0, 2.0, 3.0};
  AddressableMaxHeap heap(priorities);
  heap.update(0, 10.0);
  EXPECT_EQ(heap.pop_max(), 0u);
}

TEST(AddressableMaxHeap, PriorityReadableAfterPop) {
  const std::vector<double> priorities{1.0, 2.0};
  AddressableMaxHeap heap(priorities);
  heap.decrease_weight_by(1, 0.5);
  const auto id = heap.pop_max();
  EXPECT_EQ(id, 1u);
  EXPECT_DOUBLE_EQ(heap.priority(id), 1.5);
}

TEST(AddressableMaxHeap, EmptyHeap) {
  AddressableMaxHeap heap(std::vector<double>{});
  EXPECT_TRUE(heap.empty());
  EXPECT_EQ(heap.size(), 0u);
}

TEST(AddressableMaxHeap, SingleElement) {
  AddressableMaxHeap heap(std::vector<double>{7.0});
  EXPECT_EQ(heap.peek(), 0u);
  EXPECT_EQ(heap.pop_max(), 0u);
  EXPECT_TRUE(heap.empty());
}

/// Property test: random interleavings of pops and decreases must match a
/// naive array-scan implementation.
class HeapPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HeapPropertyTest, MatchesNaiveReference) {
  Rng rng(GetParam());
  const std::size_t n = 50 + rng.uniform_index(100);
  std::vector<double> priorities(n);
  for (double& p : priorities) p = rng.uniform(-10, 10);

  AddressableMaxHeap heap(priorities);
  std::vector<double> reference = priorities;
  std::vector<bool> live(n, true);

  auto reference_max = [&]() -> std::uint32_t {
    std::uint32_t best = AddressableMaxHeap::kNotInHeap;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (!live[i]) continue;
      if (best == AddressableMaxHeap::kNotInHeap ||
          reference[i] > reference[best] ||
          (reference[i] == reference[best] && i < best)) {
        best = i;
      }
    }
    return best;
  };

  std::size_t remaining = n;
  while (remaining > 0) {
    if (rng.bernoulli(0.6)) {
      // Decrease a random live element.
      std::uint32_t id;
      do {
        id = static_cast<std::uint32_t>(rng.uniform_index(n));
      } while (!live[id]);
      const double delta = rng.uniform(0, 5);
      heap.decrease_weight_by(id, delta);
      reference[id] -= delta;
      ASSERT_DOUBLE_EQ(heap.priority(id), reference[id]);
    } else {
      const auto expected = reference_max();
      const auto actual = heap.pop_max();
      ASSERT_EQ(actual, expected);
      live[expected] = false;
      --remaining;
      ASSERT_EQ(heap.size(), remaining);
    }
  }
  EXPECT_TRUE(heap.empty());
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, HeapPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(AddressableMaxHeap, AssignReusesStorageAndRebuilds) {
  AddressableMaxHeap heap;
  EXPECT_TRUE(heap.empty());
  heap.assign(std::vector<double>{1.0, 3.0, 2.0});
  EXPECT_EQ(heap.pop_max(), 1u);
  heap.assign(std::vector<double>{5.0, 4.0});  // reuse after partial drain
  EXPECT_EQ(heap.size(), 2u);
  EXPECT_EQ(heap.pop_max(), 0u);
  EXPECT_EQ(heap.pop_max(), 1u);
  EXPECT_TRUE(heap.empty());
}

TEST(AddressableMaxHeap, DecreaseManySkipsPoppedIds) {
  AddressableMaxHeap heap(std::vector<double>{5.0, 4.0, 3.0});
  EXPECT_EQ(heap.pop_max(), 0u);
  const std::vector<std::pair<AddressableMaxHeap::LocalId, double>> updates{
      {0, 10.0},  // popped: must be ignored
      {1, 2.0},   // 4.0 -> 2.0, below id 2
  };
  heap.decrease_many(updates);
  EXPECT_DOUBLE_EQ(heap.priority(0), 5.0);
  EXPECT_EQ(heap.pop_max(), 2u);
  EXPECT_EQ(heap.pop_max(), 1u);
}

TEST(AddressableMaxHeap, DecreaseManyEmptyBatch) {
  AddressableMaxHeap heap(std::vector<double>{1.0, 2.0});
  heap.decrease_many({});
  EXPECT_EQ(heap.pop_max(), 1u);
}

/// Property test: decrease_many must be indistinguishable from the same
/// updates applied one at a time through decrease_weight_by — same priorities
/// bit for bit, same pop order.
class DecreaseManyPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DecreaseManyPropertyTest, MatchesSequentialDecreases) {
  Rng rng(GetParam());
  const std::size_t n = 30 + rng.uniform_index(100);
  std::vector<double> priorities(n);
  for (double& p : priorities) p = rng.uniform(-10, 10);

  AddressableMaxHeap batched(priorities);
  AddressableMaxHeap sequential(priorities);

  std::size_t live = n;
  std::vector<std::pair<AddressableMaxHeap::LocalId, double>> batch;
  while (live > 0) {
    // Random batch over random ids (live and popped mixed in).
    batch.clear();
    const std::size_t batch_size = rng.uniform_index(20);
    for (std::size_t i = 0; i < batch_size; ++i) {
      batch.emplace_back(static_cast<std::uint32_t>(rng.uniform_index(n)),
                         rng.uniform(0, 5));
    }
    batched.decrease_many(batch);
    for (const auto& [id, delta] : batch) {
      if (sequential.contains(id)) sequential.decrease_weight_by(id, delta);
    }
    for (std::uint32_t id = 0; id < n; ++id) {
      ASSERT_EQ(batched.priority(id), sequential.priority(id));
    }
    const auto expected = sequential.pop_max();
    ASSERT_EQ(batched.pop_max(), expected);
    --live;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, DecreaseManyPropertyTest,
                         ::testing::Values(11, 12, 13, 14, 15, 16, 17, 18));

}  // namespace
}  // namespace subsel::core
