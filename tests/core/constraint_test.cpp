// ConstraintSet/ConstraintTracker semantics plus the randomized conformance
// properties of the constrained greedy drivers: every selection is feasible
// (audited by the brute-force oracle layer's shared predicates), maximal
// (greedy only stops short of k when nothing feasible remains — valid
// because every family is monotone infeasible under growth), and
// bit-identical to the unconstrained path when the constraints don't bind.
#include "core/constraints.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "../testing/constraint_oracle.h"
#include "../testing/property.h"
#include "../testing/test_instances.h"
#include "core/greedy.h"
#include "core/objective.h"
#include "core/objective_kernel.h"

namespace subsel::core {
namespace {

using subsel::testing::check_property;
using subsel::testing::constrained_brute_force;
using subsel::testing::feasibility_violation;
using subsel::testing::Instance;
using subsel::testing::random_constraints;
using subsel::testing::random_instance;
using subsel::testing::scaled;

TEST(ConstraintSetValidate, RejectsInconsistentConfigurations) {
  {
    ConstraintSet c;
    c.cost_budget = 1.0;
    c.costs = {0.5, 0.5};  // ground set has 3 points
    EXPECT_THROW(c.validate(3), std::invalid_argument);
  }
  {
    ConstraintSet c;
    c.cost_budget = 1.0;
    c.costs = {0.5, -0.1, 0.5};
    EXPECT_THROW(c.validate(3), std::invalid_argument);
  }
  {
    ConstraintSet c;
    c.costs = {0.5, 0.5, 0.5};  // costs without a budget
    EXPECT_THROW(c.validate(3), std::invalid_argument);
  }
  {
    ConstraintSet c;
    c.cost_budget = -1.0;
    EXPECT_THROW(c.validate(3), std::invalid_argument);
  }
  {
    ConstraintSet c;
    c.groups = {0, 1, 2};
    c.group_caps = {1, 1};  // group 2 has no cap
    EXPECT_THROW(c.validate(3), std::invalid_argument);
  }
  {
    ConstraintSet c;
    c.group_caps = {1};  // caps without groups
    EXPECT_THROW(c.validate(3), std::invalid_argument);
  }
  {
    ConstraintSet c;
    c.blocked = {5};
    EXPECT_THROW(c.validate(3), std::invalid_argument);
  }
  {
    ConstraintSet c;
    c.blocked = {-1};
    EXPECT_THROW(c.validate(3), std::invalid_argument);
  }
}

TEST(ConstraintSetValidate, SortsAndDedupsBlocked) {
  ConstraintSet c;
  c.blocked = {2, 0, 2, 1, 0};
  c.validate(3);
  EXPECT_EQ(c.blocked, (std::vector<NodeId>{0, 1, 2}));
  EXPECT_TRUE(c.has_blocked());
  EXPECT_FALSE(c.empty());
}

TEST(ConstraintSetValidate, DefaultConstructedIsEmptyAndValid) {
  ConstraintSet c;
  EXPECT_TRUE(c.empty());
  EXPECT_NO_THROW(c.validate(10));
  EXPECT_TRUE(c.feasible_subset(std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(c.cost_of(std::vector<NodeId>{0, 1, 2}), 0.0);
}

TEST(ConstraintSetFitsCost, SlackAbsorbsFloatSumNoise) {
  ConstraintSet c;
  c.cost_budget = 1.0;
  c.costs = {0.1, 0.2, 0.3, 0.4};
  c.validate(4);
  // 0.1 + 0.2 + 0.3 + 0.4 overshoots 1.0 by float noise only; the shared
  // slack must accept it — and both the tracker and feasible_subset agree.
  EXPECT_TRUE(c.feasible_subset(std::vector<NodeId>{0, 1, 2, 3}));
  ConstraintTracker tracker(c);
  for (const NodeId v : {0, 1, 2, 3}) {
    EXPECT_TRUE(tracker.feasible(v)) << "element " << v;
    tracker.accept(v);
  }
  // A genuinely over-budget element is still rejected.
  ConstraintSet over = c;
  over.costs[3] = 0.41;
  over.validate(4);
  EXPECT_FALSE(over.feasible_subset(std::vector<NodeId>{0, 1, 2, 3}));
}

TEST(ConstraintTracker, AcceptRemoveRoundTripsAndBlockedStaysBlocked) {
  ConstraintSet c;
  c.cost_budget = 1.0;
  c.costs = {0.6, 0.6, 0.1};
  c.groups = {0, 0, 1};
  c.group_caps = {1, 1};
  c.blocked = {2};
  c.validate(3);

  ConstraintTracker tracker(c);
  EXPECT_FALSE(tracker.feasible(2));  // blocked, despite fitting budgets
  EXPECT_TRUE(tracker.feasible(0));
  tracker.accept(0);
  EXPECT_FALSE(tracker.feasible(1));  // over budget AND group 0 full
  tracker.remove(0);
  EXPECT_TRUE(tracker.feasible(1));   // un-counting restores feasibility
  EXPECT_DOUBLE_EQ(tracker.spent_cost(), 0.0);

  // seed() counts committed survivors exactly like accept().
  ConstraintTracker seeded(c);
  const std::vector<NodeId> survivors = {0};
  seeded.seed(survivors);
  EXPECT_DOUBLE_EQ(seeded.spent_cost(), 0.6);
  EXPECT_FALSE(seeded.feasible(1));
}

TEST(ConstraintTracker, FeasibleHandlesIdsBeyondBlockedBitmap) {
  ConstraintSet c;
  c.blocked = {1};
  c.validate(100);
  ConstraintTracker tracker(c);
  // The bitmap is sized to the max blocked id; larger live ids must still
  // be feasible (regression guard for the bitmap bounds check).
  EXPECT_FALSE(tracker.feasible(1));
  EXPECT_TRUE(tracker.feasible(99));
}

TEST(ConstraintSetFingerprint, DistinguishesConfigurations) {
  ConstraintSet a;
  a.cost_budget = 1.0;
  a.costs = {0.5, 0.5};
  a.validate(2);
  ConstraintSet b = a;
  b.cost_budget = 2.0;
  b.validate(2);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  ConstraintSet c = a;
  EXPECT_EQ(a.fingerprint(), c.fingerprint());
}

/// Runs constrained solve_partition over the full ground set and audits the
/// selection. Returns a failure message or nullopt.
std::optional<std::string> constrained_solve_property(std::uint64_t seed,
                                                      double scale,
                                                      PartitionSolver solver) {
  const std::size_t n = scaled(14, scale, 4);
  const std::size_t k = scaled(5, scale, 2);
  const Instance instance = random_instance(n, 3, seed);
  const auto ground_set = instance.ground_set();
  const auto params = ObjectiveParams::from_alpha(0.9);
  const PairwiseKernel kernel(ground_set, params);
  Rng rng(seed ^ 0xc0ffee);
  const ConstraintSet constraints =
      subsel::testing::random_constraints(n, rng);

  std::vector<NodeId> members(n);
  for (std::size_t i = 0; i < n; ++i) members[i] = static_cast<NodeId>(i);
  SubproblemArena arena;
  const GreedyResult result = solve_partition(
      ground_set, members, k, kernel, nullptr, arena, solver, 0.1, seed,
      nullptr, nullptr, GainEngine::kAuto, &constraints);

  std::vector<NodeId> sorted = result.selected;
  std::sort(sorted.begin(), sorted.end());
  const std::string violation = feasibility_violation(sorted, constraints, k);
  if (!violation.empty()) return violation;

  // Maximality: stopping short of k is only legal when no unselected element
  // is feasible against the FINAL selection (monotone infeasibility makes
  // the final state the weakest test point).
  if (result.selected.size() < k) {
    ConstraintTracker final_state(constraints);
    final_state.seed(sorted);
    for (const NodeId v : members) {
      if (std::binary_search(sorted.begin(), sorted.end(), v)) continue;
      if (final_state.feasible(v)) {
        return "stopped at " + std::to_string(result.selected.size()) +
               " of k=" + std::to_string(k) + " with element " +
               std::to_string(v) + " still feasible";
      }
    }
  }

  // Oracle cross-check: the exhaustive constrained optimum bounds the greedy
  // objective from above, and when any feasible non-empty subset exists the
  // greedy must select something.
  const PairwiseObjective objective(ground_set, params);
  const auto oracle = constrained_brute_force(
      n, k, constraints,
      [&](std::span<const NodeId> subset) { return objective.evaluate(subset); });
  if (oracle.feasible_count > 0 && result.selected.empty()) {
    return "returned empty although " + std::to_string(oracle.feasible_count) +
           " feasible non-empty subsets exist";
  }
  const double got = objective.evaluate(sorted);
  if (got > oracle.objective + 1e-9) {
    return "objective " + std::to_string(got) +
           " exceeds the exhaustive optimum " + std::to_string(oracle.objective);
  }
  return std::nullopt;
}

TEST(ConstrainedGreedyConformance, PriorityQueueSelectionsFeasibleAndMaximal) {
  check_property("constrained priority-queue greedy", 120,
                 [](std::uint64_t seed, double scale) {
                   return constrained_solve_property(
                       seed, scale, PartitionSolver::kPriorityQueue);
                 });
}

TEST(ConstrainedGreedyConformance, StochasticSelectionsFeasibleAndMaximal) {
  check_property("constrained stochastic greedy", 120,
                 [](std::uint64_t seed, double scale) {
                   return constrained_solve_property(
                       seed, scale, PartitionSolver::kStochastic);
                 });
}

TEST(ConstrainedGreedyConformance, NonBindingConstraintsAreBitIdentical) {
  check_property(
      "non-binding constraints bit-identity", 40,
      [](std::uint64_t seed, double scale) -> std::optional<std::string> {
        const std::size_t n = scaled(40, scale, 6);
        const std::size_t k = scaled(8, scale, 2);
        const Instance instance = random_instance(n, 4, seed);
        const auto ground_set = instance.ground_set();
        const auto params = ObjectiveParams::from_alpha(0.85);
        const PairwiseKernel kernel(ground_set, params);

        // Loose everything: budget above the total cost, caps >= k, nothing
        // blocked. The constrained path must reproduce the unconstrained
        // selection AND objective bit-for-bit.
        ConstraintSet loose;
        loose.costs.assign(n, 1.0);
        loose.cost_budget = static_cast<double>(n) + 1.0;
        loose.groups.assign(n, 0);
        loose.group_caps = {n};
        loose.validate(n);

        std::vector<NodeId> members(n);
        for (std::size_t i = 0; i < n; ++i) members[i] = static_cast<NodeId>(i);
        SubproblemArena arena_a, arena_b;
        const GreedyResult unconstrained = solve_partition(
            ground_set, members, k, kernel, nullptr, arena_a,
            PartitionSolver::kPriorityQueue, 0.1, seed);
        const GreedyResult constrained = solve_partition(
            ground_set, members, k, kernel, nullptr, arena_b,
            PartitionSolver::kPriorityQueue, 0.1, seed, nullptr, nullptr,
            GainEngine::kAuto, &loose);
        if (constrained.selected != unconstrained.selected) {
          return "selections differ under non-binding constraints";
        }
        if (constrained.objective != unconstrained.objective) {
          return "objectives differ under non-binding constraints";
        }
        return std::nullopt;
      });
}

TEST(ConstrainedGreedyConformance, BlockedOnlyConstraintsExcludeExactlyBlocked) {
  const Instance instance = random_instance(30, 4, 4242);
  const auto ground_set = instance.ground_set();
  const auto params = ObjectiveParams::from_alpha(0.9);
  const PairwiseKernel kernel(ground_set, params);

  ConstraintSet constraints;
  constraints.blocked = {0, 7, 13, 21};
  constraints.validate(30);

  std::vector<NodeId> members(30);
  for (std::size_t i = 0; i < 30; ++i) members[i] = static_cast<NodeId>(i);
  SubproblemArena arena;
  const GreedyResult result = solve_partition(
      ground_set, members, 10, kernel, nullptr, arena,
      PartitionSolver::kPriorityQueue, 0.1, 1, nullptr, nullptr,
      GainEngine::kAuto, &constraints);
  EXPECT_EQ(result.selected.size(), 10u);  // plenty of unblocked candidates
  for (const NodeId v : result.selected) {
    EXPECT_FALSE(std::binary_search(constraints.blocked.begin(),
                                    constraints.blocked.end(), v))
        << "selected blocked id " << v;
  }
}

}  // namespace
}  // namespace subsel::core
